// Package spool is the durable state behind the outbound challenge
// queue: a fold of the WAL's spool records. The queue journals every
// state transition (enqueue / attempt / sent / bounced / expired)
// through a Recorder before mutating its in-memory items, so the
// State is always exactly the fold of the journalled record sequence
// — which is what lets store.Recover rebuild the pending spool after
// a crash and the crash-restart experiment compare it byte-identical
// against a shadow fold.
//
// The package deliberately knows nothing about SMTP or scheduling;
// internal/outbound owns the delivery mechanics and drives a Recorder,
// and store snapshots carry State.Export().
package spool

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/mail"
	"repro/internal/wal"
)

// Status is the lifecycle state of a spool item. The values mirror
// outbound.Status and are part of the snapshot format.
type Status int

const (
	// StatusQueued: journalled, not yet handed to the smarthost.
	StatusQueued Status = iota
	// StatusSent: accepted by the smarthost.
	StatusSent
	// StatusBounced: permanently rejected.
	StatusBounced
	// StatusExpired: retry schedule exhausted.
	StatusExpired
)

// String returns the status label used in snapshots and reports.
func (s Status) String() string {
	switch s {
	case StatusQueued:
		return "queued"
	case StatusSent:
		return "sent"
	case StatusBounced:
		return "bounced"
	case StatusExpired:
		return "expired"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// parseStatus is String's inverse for snapshot import.
func parseStatus(s string) (Status, bool) {
	switch s {
	case "queued":
		return StatusQueued, true
	case "sent":
		return StatusSent, true
	case "bounced":
		return StatusBounced, true
	case "expired":
		return StatusExpired, true
	}
	return 0, false
}

// Challenge is the durable description of one outbound challenge —
// everything needed to re-render and deliver it after a restart.
type Challenge struct {
	MsgID   string
	Token   string
	From    mail.Address
	To      mail.Address
	Subject string
	URL     string
	Size    int
	Issued  time.Time
}

// Item is one spool entry.
type Item struct {
	Challenge Challenge
	Status    Status
	Attempts  int
	LastClass string
	LastError string
	NextTry   time.Time
	// LSN of the last record applied to this item; replaying a WAL
	// suffix over a snapshot re-applies only records past it.
	LSN uint64
}

// doneItem is the terminal fate of an item. Terminal items stay in the
// done map (not the pending map) so replaying their records over a
// snapshot that already contains them is a no-op rather than a
// resurrection or a double count.
type doneItem struct {
	Status   Status
	Attempts int
	LSN      uint64
}

// State is the fold of the spool's journalled record sequence. Safe
// for concurrent use.
type State struct {
	mu      sync.Mutex
	pending map[string]*Item
	done    map[string]doneItem
}

// NewState returns an empty State.
func NewState() *State {
	return &State{pending: make(map[string]*Item), done: make(map[string]doneItem)}
}

// guard reports whether a record with lsn should be applied to msgID.
// LSN 0 (journal dropped or disabled) is unguarded and always applies.
func (s *State) guardLocked(msgID string, lsn uint64) bool {
	if lsn == 0 {
		return true
	}
	if d, ok := s.done[msgID]; ok && d.LSN >= lsn {
		return false
	}
	if it, ok := s.pending[msgID]; ok && it.LSN >= lsn {
		return false
	}
	return true
}

// ApplyEnqueue admits ch into the pending spool. Idempotent: an item
// already pending or terminal is left alone.
func (s *State) ApplyEnqueue(ch Challenge, lsn uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.done[ch.MsgID]; ok {
		return
	}
	if _, ok := s.pending[ch.MsgID]; ok {
		return
	}
	s.pending[ch.MsgID] = &Item{Challenge: ch, Status: StatusQueued, LSN: lsn}
}

// ApplyAttempt records a non-terminal delivery attempt.
func (s *State) ApplyAttempt(msgID, class, lastErr string, attempts int, nextTry time.Time, lsn uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.guardLocked(msgID, lsn) {
		return
	}
	it, ok := s.pending[msgID]
	if !ok {
		return
	}
	it.Attempts = attempts
	it.LastClass = class
	it.LastError = lastErr
	it.NextTry = nextTry
	if lsn > it.LSN {
		it.LSN = lsn
	}
}

// ApplyTerminal moves an item to its terminal fate.
func (s *State) ApplyTerminal(msgID string, st Status, attempts int, lsn uint64) {
	if st == StatusQueued {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.guardLocked(msgID, lsn) {
		return
	}
	delete(s.pending, msgID)
	s.done[msgID] = doneItem{Status: st, Attempts: attempts, LSN: lsn}
}

// Pending returns the queued items in deterministic delivery order
// (issue time, then message ID).
func (s *State) Pending() []Item {
	s.mu.Lock()
	out := make([]Item, 0, len(s.pending))
	for _, it := range s.pending {
		out = append(out, *it)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if !a.Challenge.Issued.Equal(b.Challenge.Issued) {
			return a.Challenge.Issued.Before(b.Challenge.Issued)
		}
		return a.Challenge.MsgID < b.Challenge.MsgID
	})
	return out
}

// Len returns the number of pending items.
func (s *State) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// DoneCounts tallies terminal fates by status.
func (s *State) DoneCounts() map[Status]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[Status]int)
	for _, d := range s.done {
		out[d.Status]++
	}
	return out
}

// Fate returns the terminal status of msgID, if it has one.
func (s *State) Fate(msgID string) (Status, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.done[msgID]
	return d.Status, ok
}

// ExportedItem is one pending spool entry in snapshot form.
type ExportedItem struct {
	MsgID     string    `json:"msg_id"`
	Token     string    `json:"token"`
	From      string    `json:"from"`
	To        string    `json:"to"`
	Subject   string    `json:"subject,omitempty"`
	URL       string    `json:"url,omitempty"`
	Size      int       `json:"size,omitempty"`
	Issued    time.Time `json:"issued"`
	Attempts  int       `json:"attempts,omitempty"`
	LastClass string    `json:"last_class,omitempty"`
	LastError string    `json:"last_error,omitempty"`
	NextTry   time.Time `json:"next_try"`
	LSN       uint64    `json:"lsn,omitempty"`
}

// ExportedDone is one terminal fate in snapshot form.
type ExportedDone struct {
	MsgID    string `json:"msg_id"`
	Status   string `json:"status"`
	Attempts int    `json:"attempts,omitempty"`
	LSN      uint64 `json:"lsn,omitempty"`
}

// ExportedState is the snapshot form of a State: the pending spool
// plus the terminal fates (kept for idempotent replay), both in
// message-ID order so exports are deterministic and comparable.
type ExportedState struct {
	Pending []ExportedItem `json:"pending,omitempty"`
	Done    []ExportedDone `json:"done,omitempty"`
}

// Export returns the deterministic snapshot form of s.
func (s *State) Export() ExportedState {
	s.mu.Lock()
	out := ExportedState{}
	for _, it := range s.pending {
		out.Pending = append(out.Pending, ExportedItem{
			MsgID:     it.Challenge.MsgID,
			Token:     it.Challenge.Token,
			From:      it.Challenge.From.String(),
			To:        it.Challenge.To.String(),
			Subject:   it.Challenge.Subject,
			URL:       it.Challenge.URL,
			Size:      it.Challenge.Size,
			Issued:    it.Challenge.Issued,
			Attempts:  it.Attempts,
			LastClass: it.LastClass,
			LastError: it.LastError,
			NextTry:   it.NextTry,
			LSN:       it.LSN,
		})
	}
	for id, d := range s.done {
		out.Done = append(out.Done, ExportedDone{MsgID: id, Status: d.Status.String(), Attempts: d.Attempts, LSN: d.LSN})
	}
	s.mu.Unlock()
	sort.Slice(out.Pending, func(i, j int) bool { return out.Pending[i].MsgID < out.Pending[j].MsgID })
	sort.Slice(out.Done, func(i, j int) bool { return out.Done[i].MsgID < out.Done[j].MsgID })
	return out
}

// Import replaces s's contents with a previously exported state.
func (s *State) Import(e ExportedState) error {
	pending := make(map[string]*Item, len(e.Pending))
	done := make(map[string]doneItem, len(e.Done))
	for _, x := range e.Pending {
		from, err := mail.ParseAddress(x.From)
		if err != nil {
			return fmt.Errorf("spool: pending %s from %q: %v", x.MsgID, x.From, err)
		}
		to, err := mail.ParseAddress(x.To)
		if err != nil {
			return fmt.Errorf("spool: pending %s to %q: %v", x.MsgID, x.To, err)
		}
		pending[x.MsgID] = &Item{
			Challenge: Challenge{
				MsgID:   x.MsgID,
				Token:   x.Token,
				From:    from,
				To:      to,
				Subject: x.Subject,
				URL:     x.URL,
				Size:    x.Size,
				Issued:  x.Issued,
			},
			Status:    StatusQueued,
			Attempts:  x.Attempts,
			LastClass: x.LastClass,
			LastError: x.LastError,
			NextTry:   x.NextTry,
			LSN:       x.LSN,
		}
	}
	for _, x := range e.Done {
		st, ok := parseStatus(x.Status)
		if !ok {
			return fmt.Errorf("spool: done %s has unknown status %q", x.MsgID, x.Status)
		}
		done[x.MsgID] = doneItem{Status: st, Attempts: x.Attempts, LSN: x.LSN}
	}
	s.mu.Lock()
	s.pending = pending
	s.done = done
	s.mu.Unlock()
	return nil
}

// enqueueBlob carries the challenge fields that do not fit the fixed
// Record columns. It rides in Record.Blob as JSON.
type enqueueBlob struct {
	Token   string `json:"token"`
	From    string `json:"from"`
	Subject string `json:"subject,omitempty"`
	URL     string `json:"url,omitempty"`
}

// EnqueueRecord encodes an enqueue transition.
func EnqueueRecord(at time.Time, ch Challenge) wal.Record {
	blob, _ := json.Marshal(enqueueBlob{Token: ch.Token, From: ch.From.String(), Subject: ch.Subject, URL: ch.URL})
	return wal.Record{
		Time:   at,
		Op:     wal.OpSpoolEnqueue,
		Origin: "enqueue",
		User:   ch.MsgID,
		Sender: ch.To.String(),
		Value:  int64(ch.Size),
		Aux:    ch.Issued.UnixNano(),
		Blob:   string(blob),
	}
}

// AttemptRecord encodes a non-terminal attempt transition.
func AttemptRecord(at time.Time, msgID, class, lastErr string, attempts int, nextTry time.Time) wal.Record {
	r := wal.Record{
		Time:   at,
		Op:     wal.OpSpoolAttempt,
		Origin: class,
		User:   msgID,
		Value:  int64(attempts),
		Blob:   lastErr,
	}
	if !nextTry.IsZero() {
		r.Aux = nextTry.UnixNano()
	}
	return r
}

// TerminalRecord encodes a sent/bounced/expired transition.
func TerminalRecord(at time.Time, msgID string, st Status, class, lastErr string, attempts int) wal.Record {
	r := wal.Record{Time: at, User: msgID, Origin: class, Value: int64(attempts), Blob: lastErr}
	switch st {
	case StatusSent:
		r.Op = wal.OpSpoolSent
	case StatusBounced:
		r.Op = wal.OpSpoolBounced
	case StatusExpired:
		r.Op = wal.OpSpoolExpired
	}
	return r
}

// Apply folds one WAL record into st. Non-spool ops are ignored, so
// replay loops can hand every record to both wal.Apply and spool.Apply.
func Apply(r wal.Record, st *State) error {
	if st == nil {
		return nil
	}
	switch r.Op {
	case wal.OpSpoolEnqueue:
		var b enqueueBlob
		if err := json.Unmarshal([]byte(r.Blob), &b); err != nil {
			return fmt.Errorf("spool: record %d blob: %v", r.LSN, err)
		}
		from, err := mail.ParseAddress(b.From)
		if err != nil {
			return fmt.Errorf("spool: record %d from %q: %v", r.LSN, b.From, err)
		}
		to, err := mail.ParseAddress(r.Sender)
		if err != nil {
			return fmt.Errorf("spool: record %d to %q: %v", r.LSN, r.Sender, err)
		}
		st.ApplyEnqueue(Challenge{
			MsgID:   r.User,
			Token:   b.Token,
			From:    from,
			To:      to,
			Subject: b.Subject,
			URL:     b.URL,
			Size:    int(r.Value),
			Issued:  time.Unix(0, r.Aux).UTC(),
		}, r.LSN)
	case wal.OpSpoolAttempt:
		var next time.Time
		if r.Aux != 0 {
			next = time.Unix(0, r.Aux).UTC()
		}
		st.ApplyAttempt(r.User, r.Origin, r.Blob, int(r.Value), next, r.LSN)
	case wal.OpSpoolSent:
		st.ApplyTerminal(r.User, StatusSent, int(r.Value), r.LSN)
	case wal.OpSpoolBounced:
		st.ApplyTerminal(r.User, StatusBounced, int(r.Value), r.LSN)
	case wal.OpSpoolExpired:
		st.ApplyTerminal(r.User, StatusExpired, int(r.Value), r.LSN)
	}
	return nil
}

// Recorder journals spool transitions and applies them to a State in
// one step, so the in-memory fold can never diverge from the record
// sequence a recovery would replay. Emit is the journal sink
// (wal.Journal.Emit); nil runs the spool in memory only. Like the
// store hooks, journalling is fail-open: a dropped append (Emit
// returning 0, or Gate refusing) still applies the transition, with an
// unguarded LSN.
type Recorder struct {
	State *State
	Emit  func(wal.Record) uint64
	// Gate, when set, is consulted before each append (the wal-spool
	// fault target); returning false drops the append but not the
	// in-memory transition.
	Gate func() bool

	mu      sync.Mutex
	dropped int
}

// Dropped returns how many transitions were journalled as LSN 0
// (append dropped or gated off).
func (rc *Recorder) Dropped() int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.dropped
}

// emit appends r if the journal is enabled and permitted.
func (rc *Recorder) emit(r wal.Record) uint64 {
	if rc.Emit == nil {
		return 0
	}
	if rc.Gate != nil && !rc.Gate() {
		rc.mu.Lock()
		rc.dropped++
		rc.mu.Unlock()
		return 0
	}
	lsn := rc.Emit(r)
	if lsn == 0 {
		rc.mu.Lock()
		rc.dropped++
		rc.mu.Unlock()
	}
	return lsn
}

// Enqueue journals and applies an enqueue transition.
func (rc *Recorder) Enqueue(at time.Time, ch Challenge) {
	lsn := rc.emit(EnqueueRecord(at, ch))
	rc.State.ApplyEnqueue(ch, lsn)
}

// Attempt journals and applies a non-terminal attempt transition.
func (rc *Recorder) Attempt(at time.Time, msgID, class, lastErr string, attempts int, nextTry time.Time) {
	lsn := rc.emit(AttemptRecord(at, msgID, class, lastErr, attempts, nextTry))
	rc.State.ApplyAttempt(msgID, class, lastErr, attempts, nextTry, lsn)
}

// Terminal journals and applies a sent/bounced/expired transition.
func (rc *Recorder) Terminal(at time.Time, msgID string, st Status, class, lastErr string, attempts int) {
	lsn := rc.emit(TerminalRecord(at, msgID, st, class, lastErr, attempts))
	rc.State.ApplyTerminal(msgID, st, attempts, lsn)
}
