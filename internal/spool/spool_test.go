package spool

import (
	"encoding/json"
	"testing"
	"time"

	"repro/internal/mail"
	"repro/internal/wal"
)

var t0 = time.Date(2011, 4, 1, 12, 0, 0, 0, time.UTC)

func chal(id string) Challenge {
	return Challenge{
		MsgID:   id,
		Token:   "tok-" + id,
		From:    mail.MustParseAddress("challenge@corp.example"),
		To:      mail.MustParseAddress("spoofed@victim.example"),
		Subject: "original subject",
		URL:     "http://cr.corp.example/challenge/tok-" + id,
		Size:    1800,
		Issued:  t0,
	}
}

func TestFoldLifecycle(t *testing.T) {
	s := NewState()
	s.ApplyEnqueue(chal("m1"), 1)
	s.ApplyEnqueue(chal("m2"), 2)
	if s.Len() != 2 {
		t.Fatalf("pending = %d", s.Len())
	}
	s.ApplyAttempt("m1", "tempfail", "451 try later", 1, t0.Add(15*time.Minute), 3)
	s.ApplyTerminal("m2", StatusSent, 1, 4)
	if s.Len() != 1 {
		t.Fatalf("pending after terminal = %d", s.Len())
	}
	if st, ok := s.Fate("m2"); !ok || st != StatusSent {
		t.Fatalf("fate(m2) = %v, %v", st, ok)
	}
	p := s.Pending()
	if len(p) != 1 || p[0].Challenge.MsgID != "m1" || p[0].Attempts != 1 || p[0].LastClass != "tempfail" {
		t.Fatalf("pending = %+v", p)
	}
}

func TestLSNGuardRejectsStaleReplay(t *testing.T) {
	s := NewState()
	s.ApplyEnqueue(chal("m1"), 1)
	s.ApplyAttempt("m1", "tempfail", "451", 2, t0.Add(time.Hour), 5)
	// Replaying an older attempt must not roll the item backwards.
	s.ApplyAttempt("m1", "tempfail", "451 older", 1, t0.Add(15*time.Minute), 3)
	if p := s.Pending(); p[0].Attempts != 2 || p[0].LSN != 5 {
		t.Fatalf("stale replay applied: %+v", p[0])
	}
	// A terminal fate guards against everything at or below its LSN.
	s.ApplyTerminal("m1", StatusBounced, 3, 6)
	s.ApplyEnqueue(chal("m1"), 2) // resurrection attempt
	if s.Len() != 0 {
		t.Fatal("terminal item resurrected by stale enqueue")
	}
	s.ApplyTerminal("m1", StatusSent, 9, 4) // stale conflicting fate
	if st, _ := s.Fate("m1"); st != StatusBounced {
		t.Fatalf("stale terminal overwrote fate: %v", st)
	}
}

func TestLSNZeroIsUnguarded(t *testing.T) {
	// Journal-dropped records (LSN 0) always apply: fail-open means the
	// in-memory state stays ahead of the journal, never behind it.
	s := NewState()
	s.ApplyEnqueue(chal("m1"), 7)
	s.ApplyAttempt("m1", "tempfail", "451", 1, t0.Add(time.Hour), 0)
	if p := s.Pending(); p[0].Attempts != 1 {
		t.Fatalf("unguarded attempt not applied: %+v", p[0])
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	s := NewState()
	s.ApplyEnqueue(chal("m1"), 1)
	s.ApplyEnqueue(chal("m2"), 2)
	s.ApplyAttempt("m1", "tempfail", "451 busy", 1, t0.Add(15*time.Minute), 3)
	s.ApplyTerminal("m2", StatusBounced, 1, 4)

	exp := s.Export()
	s2 := NewState()
	if err := s2.Import(exp); err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(exp)
	b, _ := json.Marshal(s2.Export())
	if string(a) != string(b) {
		t.Fatalf("round trip diverged:\n%s\n%s", a, b)
	}
	// The guard state survives: replaying the already-applied records
	// over the import is a no-op.
	s2.ApplyAttempt("m1", "tempfail", "451 older", 0, t0, 2)
	if p := s2.Pending(); p[0].Attempts != 1 {
		t.Fatalf("import lost LSN guard: %+v", p[0])
	}
}

func TestImportRejectsBadData(t *testing.T) {
	s := NewState()
	if err := s.Import(ExportedState{Pending: []ExportedItem{{MsgID: "m", From: "not-an-address", To: "a@b.example"}}}); err == nil {
		t.Fatal("imported an unparsable from address")
	}
	if err := s.Import(ExportedState{Done: []ExportedDone{{MsgID: "m", Status: "vanished"}}}); err == nil {
		t.Fatal("imported an unknown terminal status")
	}
}

func TestRecordCodecRoundTrip(t *testing.T) {
	// Every transition encodes to a wal.Record whose Apply reproduces
	// the direct fold — the property recovery depends on.
	direct := NewState()
	replayed := NewState()
	recs := []wal.Record{
		EnqueueRecord(t0, chal("m1")),
		EnqueueRecord(t0, chal("m2")),
		AttemptRecord(t0.Add(time.Minute), "m1", "tempfail", "451 busy", 1, t0.Add(time.Hour)),
		TerminalRecord(t0.Add(2*time.Minute), "m2", StatusSent, "", "", 1),
		TerminalRecord(t0.Add(3*time.Minute), "m1", StatusExpired, "exhausted", "451 busy", 2),
	}
	direct.ApplyEnqueue(chal("m1"), 1)
	direct.ApplyEnqueue(chal("m2"), 2)
	direct.ApplyAttempt("m1", "tempfail", "451 busy", 1, t0.Add(time.Hour), 3)
	direct.ApplyTerminal("m2", StatusSent, 1, 4)
	direct.ApplyTerminal("m1", StatusExpired, 2, 5)
	for i, r := range recs {
		r.LSN = uint64(i + 1)
		if err := Apply(r, replayed); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
	a, _ := json.Marshal(direct.Export())
	b, _ := json.Marshal(replayed.Export())
	if string(a) != string(b) {
		t.Fatalf("record fold diverged from direct fold:\n%s\n%s", a, b)
	}
}

func TestApplyIgnoresForeignOps(t *testing.T) {
	s := NewState()
	if err := Apply(wal.Record{Op: wal.OpWhiteAdd, User: "u", Sender: "x@y.example"}, s); err != nil {
		t.Fatal(err)
	}
	if err := Apply(wal.Record{Op: wal.OpSpoolSent, User: "never-enqueued"}, s); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("pending = %d", s.Len())
	}
}

func TestRecorderJournalsThenApplies(t *testing.T) {
	var journalled []wal.Record
	var lsn uint64
	st := NewState()
	rc := &Recorder{State: st, Emit: func(r wal.Record) uint64 {
		lsn++
		r.LSN = lsn
		journalled = append(journalled, r)
		return lsn
	}}
	rc.Enqueue(t0, chal("m1"))
	rc.Attempt(t0.Add(time.Minute), "m1", "tempfail", "451", 1, t0.Add(time.Hour))
	rc.Terminal(t0.Add(2*time.Minute), "m1", StatusSent, "", "", 2)
	if len(journalled) != 3 || rc.Dropped() != 0 {
		t.Fatalf("journalled %d records, dropped %d", len(journalled), rc.Dropped())
	}
	// The in-memory state must equal the fold of what was journalled.
	shadow := NewState()
	for _, r := range journalled {
		if err := Apply(r, shadow); err != nil {
			t.Fatal(err)
		}
	}
	a, _ := json.Marshal(st.Export())
	b, _ := json.Marshal(shadow.Export())
	if string(a) != string(b) {
		t.Fatalf("recorder state diverged from journal fold:\n%s\n%s", a, b)
	}
}

func TestRecorderFailOpen(t *testing.T) {
	// A gated-off or dropped append still applies the transition.
	st := NewState()
	gate := false
	rc := &Recorder{
		State: st,
		Emit:  func(wal.Record) uint64 { return 0 }, // journal drops everything
		Gate:  func() bool { return gate },
	}
	rc.Enqueue(t0, chal("m1"))
	if st.Len() != 1 {
		t.Fatal("gated enqueue lost the in-memory transition")
	}
	gate = true
	rc.Terminal(t0, "m1", StatusSent, "", "", 1)
	if _, ok := st.Fate("m1"); !ok {
		t.Fatal("dropped append lost the terminal transition")
	}
	if rc.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", rc.Dropped())
	}
	// No Emit at all: pure in-memory mode.
	rc2 := &Recorder{State: NewState()}
	rc2.Enqueue(t0, chal("m2"))
	if rc2.State.Len() != 1 || rc2.Dropped() != 0 {
		t.Fatalf("in-memory mode: len=%d dropped=%d", rc2.State.Len(), rc2.Dropped())
	}
}
