// Package stats provides the statistical machinery of the measurement
// pipeline: streaming summaries, fixed-bucket histograms, empirical CDFs
// and Pearson correlation — the tools behind Figure 5 (correlation
// matrix), Figure 7 (delay CDFs), Figure 9 (churn histogram) and the
// various distribution summaries. The authors used Postgres plus Python
// scripts; here the same aggregates are computed online and in-process.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates count/mean/variance/min/max online (Welford).
type Summary struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add incorporates x.
func (s *Summary) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of observations.
func (s *Summary) N() int64 { return s.n }

// Mean returns the running mean (0 with no observations).
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the sample variance (0 with <2 observations).
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation (0 with none).
func (s *Summary) Min() float64 { return s.min }

// Merge folds another summary into s as if every observation behind o
// had been Added here, using the parallel Welford combination (Chan et
// al.), so shard-local summaries reduce to the serial result. o is left
// untouched.
func (s *Summary) Merge(o *Summary) {
	if o == nil || o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *o
		return
	}
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	n := s.n + o.n
	d := o.mean - s.mean
	s.m2 += o.m2 + d*d*float64(s.n)*float64(o.n)/float64(n)
	s.mean += d * float64(o.n) / float64(n)
	s.n = n
}

// Max returns the largest observation (0 with none).
func (s *Summary) Max() float64 { return s.max }

// Histogram counts observations into caller-defined buckets. Bucket i
// covers [Bounds[i-1], Bounds[i]); the last bucket is a catch-all for
// values >= Bounds[len-1]. This matches the paper's Figure 9 buckets
// (1–10, 10–30, 30–60, 60–120, 120–240, 240–600, >600).
type Histogram struct {
	bounds []float64
	counts []int64
	total  int64
}

// NewHistogram builds a histogram with the given ascending upper bounds.
func NewHistogram(bounds ...float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("stats: histogram bounds not ascending at %d", i))
		}
	}
	return &Histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

// Add counts x into its bucket.
func (h *Histogram) Add(x float64) {
	i := sort.SearchFloat64s(h.bounds, x)
	// SearchFloat64s returns the first bound >= x; values equal to a
	// bound belong to the next bucket (half-open intervals).
	if i < len(h.bounds) && h.bounds[i] == x {
		i++
	}
	h.counts[i]++
	h.total++
}

// Merge adds another histogram's counts into h. The two must share
// identical bucket bounds — shard-local histograms of one measurement
// always do; anything else is a programming error and errors out.
func (h *Histogram) Merge(o *Histogram) error {
	if o == nil {
		return nil
	}
	if len(h.bounds) != len(o.bounds) {
		return fmt.Errorf("stats: merging histograms with %d vs %d bounds", len(h.bounds), len(o.bounds))
	}
	for i := range h.bounds {
		if h.bounds[i] != o.bounds[i] {
			return fmt.Errorf("stats: merging histograms with different bound %d: %g vs %g", i, h.bounds[i], o.bounds[i])
		}
	}
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.total += o.total
	return nil
}

// Counts returns a copy of the per-bucket counts (len(bounds)+1).
func (h *Histogram) Counts() []int64 {
	out := make([]int64, len(h.counts))
	copy(out, h.counts)
	return out
}

// Fractions returns the per-bucket fractions (0s when empty).
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.counts {
		out[i] = float64(c) / float64(h.total)
	}
	return out
}

// Total returns the number of observations.
func (h *Histogram) Total() int64 { return h.total }

// Labels renders human-readable bucket labels using unit as suffix.
func (h *Histogram) Labels(unit string) []string {
	out := make([]string, len(h.counts))
	for i := range out {
		switch {
		case i == 0:
			out[i] = fmt.Sprintf("<%g%s", h.bounds[0], unit)
		case i == len(h.bounds):
			out[i] = fmt.Sprintf(">=%g%s", h.bounds[len(h.bounds)-1], unit)
		default:
			out[i] = fmt.Sprintf("%g-%g%s", h.bounds[i-1], h.bounds[i], unit)
		}
	}
	return out
}

// CDF collects samples and answers quantile/fraction queries over the
// empirical distribution.
type CDF struct {
	samples []float64
	sorted  bool
}

// NewCDF returns an empty CDF.
func NewCDF() *CDF { return &CDF{} }

// Add appends a sample.
func (c *CDF) Add(x float64) {
	c.samples = append(c.samples, x)
	c.sorted = false
}

// N returns the sample count.
func (c *CDF) N() int { return len(c.samples) }

// Merge appends another CDF's samples, leaving o untouched. Quantiles
// over the merged CDF equal quantiles over the concatenated samples,
// regardless of how they were sharded.
func (c *CDF) Merge(o *CDF) {
	if o == nil || len(o.samples) == 0 {
		return
	}
	c.samples = append(c.samples, o.samples...)
	c.sorted = false
}

func (c *CDF) sort() {
	if !c.sorted {
		sort.Float64s(c.samples)
		c.sorted = true
	}
}

// FractionBelow returns the empirical P(X <= x).
func (c *CDF) FractionBelow(x float64) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.sort()
	i := sort.SearchFloat64s(c.samples, x)
	// Include equal samples.
	for i < len(c.samples) && c.samples[i] <= x {
		i++
	}
	return float64(i) / float64(len(c.samples))
}

// Quantile returns the q-quantile (0<=q<=1) by nearest-rank.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.sort()
	if q <= 0 {
		return c.samples[0]
	}
	if q >= 1 {
		return c.samples[len(c.samples)-1]
	}
	rank := int(math.Ceil(q*float64(len(c.samples)))) - 1
	if rank < 0 {
		rank = 0
	}
	return c.samples[rank]
}

// Points returns up to n evenly-spaced (x, P(X<=x)) pairs for plotting.
func (c *CDF) Points(n int) [][2]float64 {
	if len(c.samples) == 0 || n <= 0 {
		return nil
	}
	c.sort()
	if n > len(c.samples) {
		n = len(c.samples)
	}
	out := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		idx := (i + 1) * len(c.samples) / n
		if idx > len(c.samples) {
			idx = len(c.samples)
		}
		x := c.samples[idx-1]
		out = append(out, [2]float64{x, float64(idx) / float64(len(c.samples))})
	}
	return out
}

// Pearson returns the Pearson correlation coefficient of the paired
// samples xs and ys. It panics if the lengths differ and returns 0 when
// fewer than two pairs or either variance is zero.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Pearson with mismatched lengths")
	}
	n := len(xs)
	if n < 2 {
		return 0
	}
	var mx, my float64
	for i := 0; i < n; i++ {
		mx += xs[i]
		my += ys[i]
	}
	mx /= float64(n)
	my /= float64(n)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank correlation of the paired samples:
// Pearson over the ranks, robust to the heavy-tailed volume
// distributions in the Figure 11 analysis. Ties receive their average
// rank. It panics on mismatched lengths.
func Spearman(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Spearman with mismatched lengths")
	}
	return Pearson(ranks(xs), ranks(ys))
}

// ranks converts values to average-tie ranks (1-based).
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}

// CorrelationMatrix computes pairwise Pearson correlations between the
// named columns. Columns must have equal lengths.
type CorrelationMatrix struct {
	Names []string
	R     [][]float64
}

// NewCorrelationMatrix computes the matrix for the given columns.
func NewCorrelationMatrix(names []string, cols [][]float64) *CorrelationMatrix {
	if len(names) != len(cols) {
		panic("stats: names/columns mismatch")
	}
	n := len(cols)
	r := make([][]float64, n)
	for i := range r {
		r[i] = make([]float64, n)
		for j := range r[i] {
			if i == j {
				r[i][j] = 1
				continue
			}
			r[i][j] = Pearson(cols[i], cols[j])
		}
	}
	return &CorrelationMatrix{Names: names, R: r}
}

// Get returns the correlation between the named columns.
func (m *CorrelationMatrix) Get(a, b string) (float64, bool) {
	ia, ib := -1, -1
	for i, n := range m.Names {
		if n == a {
			ia = i
		}
		if n == b {
			ib = i
		}
	}
	if ia < 0 || ib < 0 {
		return 0, false
	}
	return m.R[ia][ib], true
}
