package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Var() != 0 {
		t.Fatal("zero Summary not zero")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if !approx(s.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v", s.Mean())
	}
	// Sample variance of this classic dataset is 32/7.
	if !approx(s.Var(), 32.0/7, 1e-12) {
		t.Fatalf("Var = %v", s.Var())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestSummarySingleValue(t *testing.T) {
	var s Summary
	s.Add(42)
	if s.Mean() != 42 || s.Var() != 0 || s.Std() != 0 || s.Min() != 42 || s.Max() != 42 {
		t.Fatal("single-value summary wrong")
	}
}

// Property: Welford mean matches naive mean.
func TestSummaryMatchesNaiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(100)
		var s Summary
		var sum float64
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 100
			s.Add(xs[i])
			sum += xs[i]
		}
		mean := sum / float64(n)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		return approx(s.Mean(), mean, 1e-6) && approx(s.Var(), ss/float64(n-1), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	// The paper's Figure 9 buckets (new whitelist entries in 60 days).
	h := NewHistogram(10, 30, 60, 120, 240, 600)
	for _, x := range []float64{1, 5, 9, 10, 29, 30, 120, 601, 9999} {
		h.Add(x)
	}
	got := h.Counts()
	// <10: {1,5,9}; 10-30: {10,29}; 30-60: {30}; 60-120: {}; 120-240: {120}; 240-600: {}; >=600: {601, 9999}
	want := []int64{3, 2, 1, 0, 1, 0, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Counts = %v, want %v", got, want)
		}
	}
	if h.Total() != 9 {
		t.Fatalf("Total = %d", h.Total())
	}
	fr := h.Fractions()
	if !approx(fr[0], 3.0/9, 1e-12) {
		t.Fatalf("Fractions[0] = %v", fr[0])
	}
}

func TestHistogramLabels(t *testing.T) {
	h := NewHistogram(10, 30)
	labels := h.Labels("")
	want := []string{"<10", "10-30", ">=30"}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("Labels = %v", labels)
		}
	}
}

func TestHistogramEmptyFractions(t *testing.T) {
	h := NewHistogram(1, 2)
	for _, f := range h.Fractions() {
		if f != 0 {
			t.Fatal("empty histogram fractions must be 0")
		}
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("descending bounds did not panic")
		}
	}()
	NewHistogram(10, 5)
}

// Property: histogram total equals sum of buckets.
func TestHistogramConservationProperty(t *testing.T) {
	f := func(vals []float64) bool {
		h := NewHistogram(-100, -10, 0, 10, 100)
		for _, v := range vals {
			if math.IsNaN(v) {
				continue
			}
			h.Add(v)
		}
		var sum int64
		for _, c := range h.Counts() {
			sum += c
		}
		return sum == h.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFFractionBelow(t *testing.T) {
	c := NewCDF()
	if c.FractionBelow(1) != 0 {
		t.Fatal("empty CDF fraction != 0")
	}
	for _, x := range []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} {
		c.Add(x)
	}
	if got := c.FractionBelow(5); got != 0.5 {
		t.Fatalf("P(X<=5) = %v, want 0.5", got)
	}
	if got := c.FractionBelow(0); got != 0 {
		t.Fatalf("P(X<=0) = %v", got)
	}
	if got := c.FractionBelow(100); got != 1 {
		t.Fatalf("P(X<=100) = %v", got)
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF()
	for i := 1; i <= 100; i++ {
		c.Add(float64(i))
	}
	if q := c.Quantile(0.5); q != 50 {
		t.Fatalf("median = %v, want 50", q)
	}
	if q := c.Quantile(0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := c.Quantile(1); q != 100 {
		t.Fatalf("q1 = %v", q)
	}
	if q := c.Quantile(0.3); q != 30 {
		t.Fatalf("q30 = %v", q)
	}
}

func TestCDFQuantileEmpty(t *testing.T) {
	if NewCDF().Quantile(0.5) != 0 {
		t.Fatal("empty quantile != 0")
	}
}

func TestCDFAddAfterQueryResorts(t *testing.T) {
	c := NewCDF()
	c.Add(10)
	_ = c.Quantile(0.5)
	c.Add(1) // must re-sort
	if q := c.Quantile(0); q != 1 {
		t.Fatalf("min after late add = %v", q)
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF()
	for i := 1; i <= 50; i++ {
		c.Add(float64(i))
	}
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("Points = %d, want 5", len(pts))
	}
	if pts[4][1] != 1 {
		t.Fatalf("last point fraction = %v, want 1", pts[4][1])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i][0] < pts[i-1][0] || pts[i][1] < pts[i-1][1] {
			t.Fatal("Points not monotonic")
		}
	}
	if NewCDF().Points(5) != nil {
		t.Fatal("empty Points != nil")
	}
}

// Property: quantile is monotone in q.
func TestCDFQuantileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := NewCDF()
		for i := 0; i < 50; i++ {
			c.Add(r.Float64() * 1000)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := c.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if r := Pearson(xs, ys); !approx(r, 1, 1e-12) {
		t.Fatalf("r = %v, want 1", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if r := Pearson(xs, neg); !approx(r, -1, 1e-12) {
		t.Fatalf("r = %v, want -1", r)
	}
}

func TestPearsonUncorrelated(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{1, -1, 1, -1} // orthogonal-ish
	r := Pearson(xs, ys)
	if math.Abs(r) > 0.5 {
		t.Fatalf("r = %v, want near 0", r)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if Pearson([]float64{1}, []float64{2}) != 0 {
		t.Fatal("n=1 r != 0")
	}
	if Pearson([]float64{3, 3, 3}, []float64{1, 2, 3}) != 0 {
		t.Fatal("zero-variance r != 0")
	}
}

func TestPearsonMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched lengths did not panic")
		}
	}()
	Pearson([]float64{1, 2}, []float64{1})
}

// Property: Pearson is symmetric and within [-1, 1].
func TestPearsonProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(50)
		xs, ys := make([]float64, n), make([]float64, n)
		for i := range xs {
			xs[i], ys[i] = r.NormFloat64(), r.NormFloat64()
		}
		a, b := Pearson(xs, ys), Pearson(ys, xs)
		return approx(a, b, 1e-12) && a >= -1.0000001 && a <= 1.0000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// A monotone but non-linear relationship: Spearman = 1, Pearson < 1.
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := []float64{1, 8, 27, 64, 125, 216}
	if r := Spearman(xs, ys); !approx(r, 1, 1e-12) {
		t.Fatalf("Spearman = %v, want 1", r)
	}
	if r := Pearson(xs, ys); r >= 0.999 {
		t.Fatalf("Pearson = %v, want < 1 (nonlinear)", r)
	}
}

func TestSpearmanTies(t *testing.T) {
	xs := []float64{1, 2, 2, 3}
	ys := []float64{10, 20, 20, 30}
	if r := Spearman(xs, ys); !approx(r, 1, 1e-12) {
		t.Fatalf("Spearman with ties = %v, want 1", r)
	}
}

func TestSpearmanAntitone(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{100, 10, 5, 1}
	if r := Spearman(xs, ys); !approx(r, -1, 1e-12) {
		t.Fatalf("Spearman = %v, want -1", r)
	}
}

func TestSpearmanMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Spearman did not panic")
		}
	}()
	Spearman([]float64{1}, []float64{1, 2})
}

func TestRanksAverageTies(t *testing.T) {
	got := ranks([]float64{30, 10, 20, 20})
	want := []float64{4, 1, 2.5, 2.5}
	for i := range want {
		if !approx(got[i], want[i], 1e-12) {
			t.Fatalf("ranks = %v, want %v", got, want)
		}
	}
}

func TestCorrelationMatrix(t *testing.T) {
	users := []float64{100, 200, 400, 800}
	emails := []float64{1000, 2100, 3900, 8100} // ~ proportional to users
	captcha := []float64{0.05, 0.04, 0.05, 0.04}
	m := NewCorrelationMatrix(
		[]string{"users", "emails", "captcha"},
		[][]float64{users, emails, captcha},
	)
	if m.R[0][0] != 1 || m.R[1][1] != 1 {
		t.Fatal("diagonal != 1")
	}
	r, ok := m.Get("users", "emails")
	if !ok || r < 0.99 {
		t.Fatalf("corr(users, emails) = %v", r)
	}
	r2, ok := m.Get("emails", "users")
	if !ok || !approx(r, r2, 1e-12) {
		t.Fatal("matrix not symmetric")
	}
	if _, ok := m.Get("users", "ghost"); ok {
		t.Fatal("Get on unknown name succeeded")
	}
}

func TestCorrelationMatrixMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatch did not panic")
		}
	}()
	NewCorrelationMatrix([]string{"a"}, [][]float64{{1}, {2}})
}

func BenchmarkSummaryAdd(b *testing.B) {
	var s Summary
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Add(float64(i % 1000))
	}
}

func BenchmarkHistogramAdd(b *testing.B) {
	h := NewHistogram(10, 30, 60, 120, 240, 600)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Add(float64(i % 1000))
	}
}

func BenchmarkPearson(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	xs, ys := make([]float64, 1000), make([]float64, 1000)
	for i := range xs {
		xs[i], ys[i] = r.Float64(), r.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Pearson(xs, ys)
	}
}

// TestSummaryMerge: merging shard summaries must reproduce the serial
// summary — the reduction the parallel log scanner relies on.
func TestSummaryMerge(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = r.NormFloat64()*40 + 10
	}
	var serial Summary
	for _, x := range xs {
		serial.Add(x)
	}
	for _, shards := range []int{1, 2, 4, 7} {
		var merged Summary
		for s := 0; s < shards; s++ {
			var part Summary
			for i := s; i < len(xs); i += shards {
				part.Add(xs[i])
			}
			merged.Merge(&part)
		}
		if merged.N() != serial.N() || merged.Min() != serial.Min() || merged.Max() != serial.Max() {
			t.Fatalf("shards=%d: n/min/max %d/%g/%g vs %d/%g/%g",
				shards, merged.N(), merged.Min(), merged.Max(), serial.N(), serial.Min(), serial.Max())
		}
		if math.Abs(merged.Mean()-serial.Mean()) > 1e-9 {
			t.Fatalf("shards=%d: mean %g vs %g", shards, merged.Mean(), serial.Mean())
		}
		if math.Abs(merged.Var()-serial.Var()) > 1e-6*serial.Var() {
			t.Fatalf("shards=%d: var %g vs %g", shards, merged.Var(), serial.Var())
		}
	}
	// Merging into an empty summary copies; merging an empty is a no-op.
	var empty Summary
	empty.Merge(&serial)
	if empty != serial {
		t.Fatal("merge into empty lost state")
	}
	before := serial
	serial.Merge(&Summary{})
	if serial != before {
		t.Fatal("merging an empty summary changed state")
	}
}

// TestHistogramMerge: counts add bucket-wise; mismatched bounds refuse.
func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(10, 30, 60)
	b := NewHistogram(10, 30, 60)
	for _, x := range []float64{1, 15, 45, 100} {
		a.Add(x)
	}
	for _, x := range []float64{5, 35, 200, 300} {
		b.Add(x)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Total() != 8 {
		t.Fatalf("total = %d", a.Total())
	}
	want := []int64{2, 1, 2, 3}
	for i, c := range a.Counts() {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
	if err := a.Merge(NewHistogram(10, 30)); err == nil {
		t.Fatal("bound-count mismatch accepted")
	}
	if err := a.Merge(NewHistogram(10, 30, 90)); err == nil {
		t.Fatal("bound-value mismatch accepted")
	}
}

// TestCDFMerge: quantiles over merged shards equal quantiles over the
// concatenation.
func TestCDFMerge(t *testing.T) {
	serial, merged, shard := NewCDF(), NewCDF(), NewCDF()
	for i := 0; i < 1000; i++ {
		x := float64((i * 7919) % 1000)
		serial.Add(x)
		if i%2 == 0 {
			merged.Add(x)
		} else {
			shard.Add(x)
		}
	}
	merged.Merge(shard)
	if merged.N() != serial.N() {
		t.Fatalf("n = %d, want %d", merged.N(), serial.N())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if merged.Quantile(q) != serial.Quantile(q) {
			t.Fatalf("q=%g: %g vs %g", q, merged.Quantile(q), serial.Quantile(q))
		}
	}
}
