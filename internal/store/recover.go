package store

import (
	"repro/internal/spool"
	"repro/internal/wal"
)

// Recovery is the result of a boot-time Recover.
type Recovery struct {
	// Snapshot is the loaded snapshot, nil on first boot.
	Snapshot *Snapshot
	// Log is the opened write-ahead log, ready for appending. The caller
	// owns it (attach the journal, Close on shutdown).
	Log *wal.Log
	// Replayed counts WAL records applied on top of the snapshot.
	Replayed int
	// Truncated reports whether a torn or corrupt WAL tail was cut off
	// (the expected aftermath of a crash, not an error).
	Truncated bool
	// TornBytes is how many bytes the truncation discarded.
	TornBytes int64
}

// Recover restores an installation's state: load the newest snapshot
// from snapPath (if any), then open the WAL and replay the suffix past
// the snapshot's WalLSN cut into the stores.
//
// The cut is sampled *before* the stores export (Saver callers sample
// LastLSN first), so mutations journalled during the export window have
// LSN > cut and replay again on top of a snapshot that may already
// contain them — which is safe because every store's Apply is
// idempotent (whitelist: insert-if-absent / delete; reputation:
// per-entry LSN guard; greylist: absolute state; spool: per-item LSN
// guard plus a terminal-fate set). Conversely every record with
// LSN <= cut is guaranteed inside the snapshot: each store serialises
// (apply, journal) pairs against its export.
//
// A torn WAL tail is truncated, never fatal: the only hard failures are
// I/O errors and a snapshot newer than this build understands.
func Recover(snapPath string, walOpts wal.Options, st Stores) (*Recovery, error) {
	snap, err := LoadFile(snapPath, st)
	if err != nil {
		return nil, err
	}
	var fromLSN uint64
	if snap != nil {
		fromLSN = snap.WalLSN
	}
	log, stats, err := wal.Open(walOpts, fromLSN, func(r wal.Record) error {
		if err := wal.Apply(r, st.Whitelist, st.Reputation, st.Greylist); err != nil {
			return err
		}
		return spool.Apply(r, st.Spool)
	})
	if err != nil {
		return nil, err
	}
	return &Recovery{
		Snapshot:  snap,
		Log:       log,
		Replayed:  stats.Replayed,
		Truncated: stats.Truncated,
		TornBytes: stats.TornBytes,
	}, nil
}
