package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/greylist"
	"repro/internal/mail"
	"repro/internal/reputation"
	"repro/internal/wal"
	"repro/internal/whitelist"
)

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRecoverSnapshotPlusWALSuffix runs the full boot protocol: mutate
// journalled stores, snapshot at a mid-run WAL cut, keep mutating, then
// recover a cold installation from snapshot + WAL suffix and require
// byte-identical whitelist and reputation exports.
func TestRecoverSnapshotPlusWALSuffix(t *testing.T) {
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	if err := os.MkdirAll(walDir, 0o755); err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir, "state.json")

	clk := clock.NewSim(t0)
	wl := whitelist.NewStore(clk)
	rep := reputation.NewStore(reputation.Config{}, clk)
	gl := greylist.New(greylist.Config{}, clk)
	live := Stores{Whitelist: wl, Reputation: rep, Greylist: gl}

	log, _, err := wal.Open(wal.Options{Dir: walDir, Manual: true}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	j := wal.NewJournal(log)
	j.Attach(wl, rep, gl)

	user := mail.MustParseAddress("alice@corp.example")
	mutate := func(i int) {
		sender := mail.MustParseAddress(fmt.Sprintf("sender%d@remote.example", i))
		wl.AddWhite(user, sender, whitelist.Source(i%5))
		rep.Record(sender, fmt.Sprintf("198.51.100.%d", i), reputation.Outcome(i%6))
		gl.Check(fmt.Sprintf("203.0.113.%d", i), sender, user)
		clk.Advance(41 * time.Minute)
	}
	for i := 0; i < 12; i++ {
		mutate(i)
	}

	// Snapshot protocol: sample the cut BEFORE exporting, sync, save.
	cut := log.LastLSN()
	if err := log.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := SaveFile(snapPath, "corp", live, cut, clk.Now()); err != nil {
		t.Fatal(err)
	}

	// Post-snapshot mutations live only in the WAL suffix.
	for i := 12; i < 20; i++ {
		mutate(i)
	}
	wl.RemoveWhite(user, mail.MustParseAddress("sender3@remote.example"))
	if err := log.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	// Cold boot.
	clk2 := clock.NewSim(clk.Now())
	cold := Stores{
		Whitelist:  whitelist.NewStore(clk2),
		Reputation: reputation.NewStore(reputation.Config{}, clk2),
		Greylist:   greylist.New(greylist.Config{}, clk2),
	}
	rec, err := Recover(snapPath, wal.Options{Dir: walDir, Manual: true}, cold)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Log.Close()
	if rec.Snapshot == nil || rec.Snapshot.WalLSN != cut {
		t.Fatalf("snapshot = %+v, want WalLSN %d", rec.Snapshot, cut)
	}
	if rec.Replayed == 0 {
		t.Fatal("no WAL records replayed past the snapshot cut")
	}
	if rec.Truncated {
		t.Fatal("clean shutdown reported a torn tail")
	}

	if a, b := mustJSON(t, wl.Export()), mustJSON(t, cold.Whitelist.Export()); !bytes.Equal(a, b) {
		t.Fatalf("whitelist exports differ after recovery\n%s\n%s", a, b)
	}
	if a, b := mustJSON(t, rep.Export()), mustJSON(t, cold.Reputation.Export()); !bytes.Equal(a, b) {
		t.Fatalf("reputation exports differ after recovery\n%s\n%s", a, b)
	}

	// The recovered log continues the LSN sequence.
	if next := rec.Log.LastLSN(); next != log.LastLSN() {
		t.Fatalf("recovered LastLSN = %d, want %d", next, log.LastLSN())
	}
}

// TestRecoverTruncatesTornTail crashes mid-append: the last frame on
// disk is cut short, and Recover must boot anyway, replaying the intact
// prefix and reporting the truncation.
func TestRecoverTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	if err := os.MkdirAll(walDir, 0o755); err != nil {
		t.Fatal(err)
	}

	clk := clock.NewSim(t0)
	wl := whitelist.NewStore(clk)
	log, _, err := wal.Open(wal.Options{Dir: walDir, Manual: true}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	j := wal.NewJournal(log)
	j.Attach(wl, nil, nil)
	user := mail.MustParseAddress("alice@corp.example")
	for i := 0; i < 10; i++ {
		wl.AddWhite(user, mail.MustParseAddress(fmt.Sprintf("s%d@remote.example", i)), whitelist.SourceChallenge)
	}
	if err := log.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: chop 5 bytes off the active segment.
	segs, err := filepath.Glob(filepath.Join(walDir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments = %v, err = %v", segs, err)
	}
	seg := segs[len(segs)-1]
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, b[:len(b)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	cold := Stores{Whitelist: whitelist.NewStore(clock.NewSim(clk.Now()))}
	rec, err := Recover(filepath.Join(dir, "no-snapshot.json"), wal.Options{Dir: walDir, Manual: true}, cold)
	if err != nil {
		t.Fatalf("Recover refused to boot on a torn tail: %v", err)
	}
	defer rec.Log.Close()
	if !rec.Truncated || rec.TornBytes == 0 {
		t.Fatalf("recovery = %+v, want truncated torn tail", rec)
	}
	if rec.Replayed != 9 {
		t.Fatalf("replayed %d records, want 9 (intact prefix)", rec.Replayed)
	}
	if !cold.Whitelist.IsWhite(user, mail.MustParseAddress("s8@remote.example")) {
		t.Fatal("intact prefix record lost")
	}
}
