// Package store persists a CR installation's durable state. The
// whitelists are the product's real asset — the paper's whole premise is
// that they converge to a stable contact set over weeks (§4.3) — so a
// deployment must carry them across restarts. Snapshots are JSON,
// written atomically (temp file + rename) so a crash mid-save never
// corrupts the previous state.
//
// Snapshots pair with the write-ahead log (internal/wal): a snapshot
// records the WAL cut it covers (WalLSN), Recover loads the newest
// snapshot and replays the WAL suffix on top, and compaction deletes
// sealed segments wholly below the cut. See DESIGN.md's persistence
// section for the recovery invariants.
//
// Quarantined messages are deliberately NOT persisted: they are 30-day
// transient state, and losing them on failover is survivable — senders
// simply get re-challenged. Outstanding *outbound* challenges are
// different: the engine has already acked the gray message and decided
// to challenge, so the pending spool (internal/spool) IS durable state
// — it rides in the snapshot and its transitions replay from the WAL.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"repro/internal/faults"
	"repro/internal/greylist"
	"repro/internal/reputation"
	"repro/internal/spool"
	"repro/internal/whitelist"
)

// FormatVersion identifies the snapshot schema.
const FormatVersion = 1

// maxSnapshotBytes caps how much of a snapshot file the decoder will
// read: a snapshot is operator-supplied input, and a corrupt or hostile
// length must not balloon into an unbounded allocation. 256 MiB is two
// orders of magnitude above the largest observed installation state.
var maxSnapshotBytes int64 = 256 << 20

// Stores bundles the durable state of one installation. Any field may
// be nil when the corresponding subsystem is not wired.
type Stores struct {
	Whitelist  *whitelist.Store
	Reputation *reputation.Store
	Greylist   *greylist.Store
	Spool      *spool.State
}

// Snapshot is the serialised durable state of one installation.
type Snapshot struct {
	Version int                      `json:"version"`
	Name    string                   `json:"name"`
	SavedAt time.Time                `json:"saved_at"`
	Lists   []whitelist.ExportedList `json:"lists"`
	// Reputation carries the sender-reputation counters (absent in
	// snapshots written before the reputation subsystem, and when no
	// store is wired). Counters round-trip through JSON bit-for-bit, so
	// a restore reproduces every score exactly.
	Reputation []reputation.ExportedEntry `json:"reputation,omitempty"`
	// Greylist carries the greylist tuple table.
	Greylist []greylist.ExportedTuple `json:"greylist,omitempty"`
	// Spool carries the outbound challenge spool: the pending items and
	// the terminal fates needed for idempotent WAL replay.
	Spool *spool.ExportedState `json:"spool,omitempty"`
	// WalLSN is the write-ahead-log cut this snapshot covers: every
	// journalled mutation with LSN <= WalLSN is folded into the exported
	// state. Zero when no WAL is attached.
	WalLSN uint64 `json:"wal_lsn,omitempty"`
}

// Save writes a snapshot of the stores to w. walLSN is the WAL cut the
// caller sampled BEFORE exporting (see Saver.Save); pass 0 without a
// WAL.
func Save(w io.Writer, name string, st Stores, walLSN uint64, now time.Time) error {
	snap := Snapshot{
		Version: FormatVersion,
		Name:    name,
		SavedAt: now.UTC(),
		WalLSN:  walLSN,
	}
	if st.Whitelist != nil {
		snap.Lists = st.Whitelist.Export()
	}
	if st.Reputation != nil {
		snap.Reputation = st.Reputation.Export()
	}
	if st.Greylist != nil {
		snap.Greylist = st.Greylist.Export()
	}
	if st.Spool != nil {
		sp := st.Spool.Export()
		snap.Spool = &sp
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&snap); err != nil {
		return fmt.Errorf("store: encode: %w", err)
	}
	return nil
}

// Load reads a snapshot from r and merges it into the stores. Snapshots
// from a newer build (Version > FormatVersion) are rejected with a
// descriptive error rather than misread, and the reader is capped at
// maxSnapshotBytes so corrupt input cannot trigger unbounded reads.
func Load(r io.Reader, st Stores) (*Snapshot, error) {
	var snap Snapshot
	if err := json.NewDecoder(io.LimitReader(r, maxSnapshotBytes)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("store: decode: %w", err)
	}
	if snap.Version > FormatVersion {
		return nil, fmt.Errorf("store: snapshot format version %d is newer than this build supports (max %d); refusing to load it partially — upgrade the binary or restore an older snapshot",
			snap.Version, FormatVersion)
	}
	if snap.Version < 1 {
		return nil, fmt.Errorf("store: invalid snapshot version %d", snap.Version)
	}
	if st.Whitelist != nil {
		if err := st.Whitelist.Import(snap.Lists); err != nil {
			return nil, err
		}
	}
	if st.Reputation != nil && len(snap.Reputation) > 0 {
		st.Reputation.Import(snap.Reputation)
	}
	if st.Greylist != nil && len(snap.Greylist) > 0 {
		st.Greylist.Import(snap.Greylist)
	}
	if st.Spool != nil && snap.Spool != nil {
		if err := st.Spool.Import(*snap.Spool); err != nil {
			return nil, err
		}
	}
	return &snap, nil
}

// SaveFile atomically writes the snapshot to path.
//
// Durability contract: the data lands in a temp file in the same
// directory, is fsynced, renamed into place, and then the parent
// directory is fsynced. Readers never observe a partial snapshot (the
// rename is atomic), and once SaveFile returns the new snapshot
// survives a crash: on filesystems that journal metadata only (or
// reorder the rename against the durable directory entry), a crash
// immediately after os.Rename could otherwise roll the directory back
// to the old entry — or to none — losing the snapshot the caller was
// just told is safe. The directory fsync pins the rename itself.
func SaveFile(path, name string, st Stores, walLSN uint64, now time.Time) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".crstate-*")
	if err != nil {
		return fmt.Errorf("store: temp file: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after successful rename

	if err := Save(tmp, name, st, walLSN, now); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: close: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("store: rename: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry is durable. Some
// platforms refuse to fsync directories; those errors are ignored —
// the rename already happened, durability is simply best-effort there.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: open dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return fmt.Errorf("store: sync dir: %w", err)
	}
	return nil
}

// Saver persists periodic snapshots to one path, optionally guarded by
// a fault injector (target "store"): an injected write error aborts the
// save before any bytes hit disk, so the previous snapshot stays intact
// — the failure mode the atomic temp-file+rename protocol exists for.
type Saver struct {
	// Path is the snapshot file; required.
	Path string
	// Name labels the snapshot (installation name).
	Name string
	// Injector is an optional fault source for the save path.
	Injector faults.Injector

	mu           sync.Mutex
	attempts     int64
	failed       int64
	lastDuration time.Duration
	lastSuccess  time.Time
}

// Save writes one snapshot, consulting the injector first. walLSN is
// the WAL cut sampled before this call (0 without a WAL).
func (s *Saver) Save(st Stores, walLSN uint64, now time.Time) error {
	s.mu.Lock()
	s.attempts++
	inj := s.Injector
	s.mu.Unlock()
	if inj != nil {
		if d := inj.Decide("store", 0); d.Err != nil {
			s.mu.Lock()
			s.failed++
			s.mu.Unlock()
			return fmt.Errorf("store: save %s: %w", s.Path, d.Err)
		}
	}
	start := time.Now()
	if err := SaveFile(s.Path, s.Name, st, walLSN, now); err != nil {
		s.mu.Lock()
		s.failed++
		s.mu.Unlock()
		return err
	}
	s.mu.Lock()
	s.lastDuration = time.Since(start)
	s.lastSuccess = now
	s.mu.Unlock()
	return nil
}

// SaverStats is an operational snapshot of a Saver.
type SaverStats struct {
	Attempts int64
	Failed   int64
	// LastDuration is how long the most recent successful save took
	// (wall clock, zero until one succeeds).
	LastDuration time.Duration
	// LastSuccess is the state timestamp of the most recent successful
	// save.
	LastSuccess time.Time
}

// Stats returns the save counters and last-success timing.
func (s *Saver) Stats() SaverStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SaverStats{
		Attempts:     s.attempts,
		Failed:       s.failed,
		LastDuration: s.lastDuration,
		LastSuccess:  s.lastSuccess,
	}
}

// LoadFile reads a snapshot file into the stores. A missing file is not
// an error: it returns (nil, nil) so a first boot starts empty.
func LoadFile(path string, st Stores) (*Snapshot, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	defer f.Close()
	return Load(f, st)
}
