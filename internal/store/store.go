// Package store persists a CR installation's durable state. The
// whitelists are the product's real asset — the paper's whole premise is
// that they converge to a stable contact set over weeks (§4.3) — so a
// deployment must carry them across restarts. Snapshots are JSON,
// written atomically (temp file + rename) so a crash mid-save never
// corrupts the previous state.
//
// Quarantined messages and outstanding challenges are deliberately NOT
// persisted: they are 30-day transient state, and the studied product's
// failure mode (losing in-flight challenges on failover) is survivable —
// senders simply get re-challenged.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"repro/internal/faults"
	"repro/internal/reputation"
	"repro/internal/whitelist"
)

// FormatVersion identifies the snapshot schema.
const FormatVersion = 1

// Snapshot is the serialised durable state of one installation.
type Snapshot struct {
	Version int                      `json:"version"`
	Name    string                   `json:"name"`
	SavedAt time.Time                `json:"saved_at"`
	Lists   []whitelist.ExportedList `json:"lists"`
	// Reputation carries the sender-reputation counters (absent in
	// snapshots written before the reputation subsystem, and when no
	// store is wired). Counters round-trip through JSON bit-for-bit, so
	// a restore reproduces every score exactly.
	Reputation []reputation.ExportedEntry `json:"reputation,omitempty"`
}

// Save writes a snapshot of the store to w. rep may be nil when the
// installation runs without a reputation store.
func Save(w io.Writer, name string, wl *whitelist.Store, rep *reputation.Store, now time.Time) error {
	snap := Snapshot{
		Version: FormatVersion,
		Name:    name,
		SavedAt: now.UTC(),
		Lists:   wl.Export(),
	}
	if rep != nil {
		snap.Reputation = rep.Export()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&snap); err != nil {
		return fmt.Errorf("store: encode: %w", err)
	}
	return nil
}

// Load reads a snapshot from r and merges it into wl and (when both
// the snapshot and the caller have one) the reputation store.
func Load(r io.Reader, wl *whitelist.Store, rep *reputation.Store) (*Snapshot, error) {
	var snap Snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("store: decode: %w", err)
	}
	if snap.Version != FormatVersion {
		return nil, fmt.Errorf("store: unsupported snapshot version %d", snap.Version)
	}
	if err := wl.Import(snap.Lists); err != nil {
		return nil, err
	}
	if rep != nil && len(snap.Reputation) > 0 {
		rep.Import(snap.Reputation)
	}
	return &snap, nil
}

// SaveFile atomically writes the snapshot to path.
//
// Durability contract: the data lands in a temp file in the same
// directory, is fsynced, renamed into place, and then the parent
// directory is fsynced. Readers never observe a partial snapshot (the
// rename is atomic), and once SaveFile returns the new snapshot
// survives a crash: on filesystems that journal metadata only (or
// reorder the rename against the durable directory entry), a crash
// immediately after os.Rename could otherwise roll the directory back
// to the old entry — or to none — losing the snapshot the caller was
// just told is safe. The directory fsync pins the rename itself.
func SaveFile(path, name string, wl *whitelist.Store, rep *reputation.Store, now time.Time) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".crstate-*")
	if err != nil {
		return fmt.Errorf("store: temp file: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after successful rename

	if err := Save(tmp, name, wl, rep, now); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: close: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("store: rename: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry is durable. Some
// platforms refuse to fsync directories; those errors are ignored —
// the rename already happened, durability is simply best-effort there.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: open dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return fmt.Errorf("store: sync dir: %w", err)
	}
	return nil
}

// Saver persists periodic snapshots to one path, optionally guarded by
// a fault injector (target "store"): an injected write error aborts the
// save before any bytes hit disk, so the previous snapshot stays intact
// — the failure mode the atomic temp-file+rename protocol exists for.
type Saver struct {
	// Path is the snapshot file; required.
	Path string
	// Name labels the snapshot (installation name).
	Name string
	// Injector is an optional fault source for the save path.
	Injector faults.Injector

	mu       sync.Mutex
	attempts int64
	failed   int64
}

// Save writes one snapshot, consulting the injector first. rep may be
// nil.
func (s *Saver) Save(wl *whitelist.Store, rep *reputation.Store, now time.Time) error {
	s.mu.Lock()
	s.attempts++
	inj := s.Injector
	s.mu.Unlock()
	if inj != nil {
		if d := inj.Decide("store", 0); d.Err != nil {
			s.mu.Lock()
			s.failed++
			s.mu.Unlock()
			return fmt.Errorf("store: save %s: %w", s.Path, d.Err)
		}
	}
	if err := SaveFile(s.Path, s.Name, wl, rep, now); err != nil {
		s.mu.Lock()
		s.failed++
		s.mu.Unlock()
		return err
	}
	return nil
}

// Stats returns how many saves were attempted and how many failed.
func (s *Saver) Stats() (attempts, failed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.attempts, s.failed
}

// LoadFile reads a snapshot file into wl. A missing file is not an
// error: it returns (nil, nil) so a first boot starts empty.
func LoadFile(path string, wl *whitelist.Store, rep *reputation.Store) (*Snapshot, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	defer f.Close()
	return Load(f, wl, rep)
}
