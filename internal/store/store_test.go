package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/mail"
	"repro/internal/reputation"
	"repro/internal/whitelist"
)

var (
	t0  = time.Date(2010, 7, 1, 0, 0, 0, 0, time.UTC)
	bob = mail.MustParseAddress("bob@corp.example")
)

func populated(clk *clock.Sim) *whitelist.Store {
	wl := whitelist.NewStore(clk)
	wl.AddWhite(bob, mail.MustParseAddress("alice@example.com"), whitelist.SourceChallenge)
	clk.Advance(time.Hour)
	wl.AddWhite(bob, mail.MustParseAddress("carol@example.com"), whitelist.SourceDigest)
	wl.AddBlack(bob, mail.MustParseAddress("spammer@junk.example"))
	carol := mail.MustParseAddress("carol@corp.example")
	wl.AddWhite(carol, mail.MustParseAddress("dave@example.com"), whitelist.SourceOutbound)
	return wl
}

func TestSaveLoadRoundTrip(t *testing.T) {
	clk := clock.NewSim(t0)
	src := populated(clk)

	var sb strings.Builder
	if err := Save(&sb, "corp", Stores{Whitelist: src}, 0, clk.Now()); err != nil {
		t.Fatal(err)
	}

	dst := whitelist.NewStore(clk)
	snap, err := Load(strings.NewReader(sb.String()), Stores{Whitelist: dst})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Name != "corp" || snap.Version != FormatVersion {
		t.Fatalf("snapshot header = %+v", snap)
	}

	if !dst.IsWhite(bob, mail.MustParseAddress("alice@example.com")) {
		t.Fatal("alice lost")
	}
	if !dst.IsBlack(bob, mail.MustParseAddress("spammer@junk.example")) {
		t.Fatal("blacklist lost")
	}
	carol := mail.MustParseAddress("carol@corp.example")
	if !dst.IsWhite(carol, mail.MustParseAddress("dave@example.com")) {
		t.Fatal("second user lost")
	}
	// Sources and timestamps survive: the churn analysis still works on
	// the restored store.
	n := dst.AdditionsBetween(bob, t0, t0.Add(30*time.Minute), whitelist.SourceChallenge)
	if n != 1 {
		t.Fatalf("restored challenge-sourced additions in window = %d, want 1", n)
	}
}

func TestLoadRejectsNewerVersion(t *testing.T) {
	clk := clock.NewSim(t0)
	wl := whitelist.NewStore(clk)
	_, err := Load(strings.NewReader(`{"version": 99, "lists": []}`), Stores{Whitelist: wl})
	if err == nil || !strings.Contains(err.Error(), "newer than this build") {
		t.Fatalf("err = %v, want descriptive newer-version rejection", err)
	}
	if _, err := Load(strings.NewReader(`{"version": 0, "lists": []}`), Stores{Whitelist: wl}); err == nil {
		t.Fatal("version 0 accepted")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	clk := clock.NewSim(t0)
	wl := whitelist.NewStore(clk)
	if _, err := Load(strings.NewReader("not json"), Stores{Whitelist: wl}); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLoadCapsInputSize(t *testing.T) {
	old := maxSnapshotBytes
	maxSnapshotBytes = 64
	defer func() { maxSnapshotBytes = old }()
	clk := clock.NewSim(t0)
	src := populated(clk)
	var sb strings.Builder
	if err := Save(&sb, "corp", Stores{Whitelist: src}, 0, clk.Now()); err != nil {
		t.Fatal(err)
	}
	dst := whitelist.NewStore(clk)
	if _, err := Load(strings.NewReader(sb.String()), Stores{Whitelist: dst}); err == nil {
		t.Fatal("oversized snapshot accepted past the read cap")
	}
}

func TestImportIsMergeNotReplace(t *testing.T) {
	clk := clock.NewSim(t0)
	src := populated(clk)
	var sb strings.Builder
	if err := Save(&sb, "corp", Stores{Whitelist: src}, 0, clk.Now()); err != nil {
		t.Fatal(err)
	}

	dst := whitelist.NewStore(clk)
	pre := mail.MustParseAddress("pre@existing.example")
	dst.AddWhite(bob, pre, whitelist.SourceManual)
	if _, err := Load(strings.NewReader(sb.String()), Stores{Whitelist: dst}); err != nil {
		t.Fatal(err)
	}
	if !dst.IsWhite(bob, pre) {
		t.Fatal("pre-existing entry destroyed by Load")
	}
	if !dst.IsWhite(bob, mail.MustParseAddress("alice@example.com")) {
		t.Fatal("imported entry missing")
	}
}

func TestSaveFileLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")

	clk := clock.NewSim(t0)
	src := populated(clk)
	if err := SaveFile(path, "corp", Stores{Whitelist: src}, 0, clk.Now()); err != nil {
		t.Fatal(err)
	}
	// No stray temp files.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("dir has %d entries, want 1", len(entries))
	}

	dst := whitelist.NewStore(clk)
	snap, err := LoadFile(path, Stores{Whitelist: dst})
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.Name != "corp" {
		t.Fatalf("snapshot = %+v", snap)
	}
	if !dst.IsWhite(bob, mail.MustParseAddress("alice@example.com")) {
		t.Fatal("file round trip lost entries")
	}
}

func TestReputationSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	clk := clock.NewSim(t0)
	wl := populated(clk)
	rep := reputation.NewStore(reputation.DefaultConfig(), clk)
	alice := mail.MustParseAddress("alice@example.com")
	for i := 0; i < 5; i++ {
		rep.Record(alice, "192.0.2.10", reputation.Delivered)
		clk.Advance(13 * time.Minute) // non-trivial decay factors
	}
	rep.Record(mail.MustParseAddress("spam@junk.example"), "100.64.0.1", reputation.RBLHit)

	if err := SaveFile(path, "corp", Stores{Whitelist: wl, Reputation: rep}, 0, clk.Now()); err != nil {
		t.Fatal(err)
	}
	// "Restart": fresh stores, restored from disk.
	wl2 := whitelist.NewStore(clk)
	rep2 := reputation.NewStore(reputation.DefaultConfig(), clk)
	snap, err := LoadFile(path, Stores{Whitelist: wl2, Reputation: rep2})
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Reputation) == 0 {
		t.Fatal("snapshot carries no reputation entries")
	}
	a, b := rep.Score(alice, "192.0.2.10"), rep2.Score(alice, "192.0.2.10")
	if a.Score != b.Score || a.Mass != b.Mass || a.Band != b.Band {
		t.Fatalf("reputation drift across restart: %+v vs %+v", a, b)
	}
	if rep2.Stats().Entries != rep.Stats().Entries {
		t.Fatalf("entry count drift: %d vs %d", rep2.Stats().Entries, rep.Stats().Entries)
	}
}

// TestLoadOldSnapshotWithoutReputation: snapshots written before the
// reputation subsystem (no "reputation" key) still load cleanly.
func TestLoadOldSnapshotWithoutReputation(t *testing.T) {
	clk := clock.NewSim(t0)
	wl := whitelist.NewStore(clk)
	rep := reputation.NewStore(reputation.DefaultConfig(), clk)
	snap, err := Load(strings.NewReader(`{"version":1,"name":"old","lists":[]}`), Stores{Whitelist: wl, Reputation: rep})
	if err != nil || snap.Name != "old" {
		t.Fatalf("old snapshot rejected: snap=%+v err=%v", snap, err)
	}
	if rep.Stats().Entries != 0 {
		t.Fatalf("phantom reputation entries: %+v", rep.Stats())
	}
}

func TestLoadFileMissingIsFirstBoot(t *testing.T) {
	clk := clock.NewSim(t0)
	wl := whitelist.NewStore(clk)
	snap, err := LoadFile(filepath.Join(t.TempDir(), "nope.json"), Stores{Whitelist: wl})
	if err != nil || snap != nil {
		t.Fatalf("missing file: snap=%v err=%v", snap, err)
	}
}

func TestSaveFileOverwritesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	clk := clock.NewSim(t0)

	first := whitelist.NewStore(clk)
	first.AddWhite(bob, mail.MustParseAddress("v1@example.com"), whitelist.SourceManual)
	if err := SaveFile(path, "corp", Stores{Whitelist: first}, 0, clk.Now()); err != nil {
		t.Fatal(err)
	}
	second := populated(clk)
	if err := SaveFile(path, "corp", Stores{Whitelist: second}, 0, clk.Now()); err != nil {
		t.Fatal(err)
	}
	dst := whitelist.NewStore(clk)
	if _, err := LoadFile(path, Stores{Whitelist: dst}); err != nil {
		t.Fatal(err)
	}
	if dst.IsWhite(bob, mail.MustParseAddress("v1@example.com")) {
		t.Fatal("old snapshot contents leaked through")
	}
	if !dst.IsWhite(bob, mail.MustParseAddress("alice@example.com")) {
		t.Fatal("new snapshot missing")
	}
}

func TestSaverRecordsDuration(t *testing.T) {
	clk := clock.NewSim(t0)
	wl := populated(clk)
	s := &Saver{Path: filepath.Join(t.TempDir(), "state.json"), Name: "corp"}
	if st := s.Stats(); st.LastDuration != 0 || !st.LastSuccess.IsZero() {
		t.Fatalf("fresh saver stats = %+v", st)
	}
	if err := s.Save(Stores{Whitelist: wl}, 0, clk.Now()); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Attempts != 1 || st.Failed != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.LastDuration <= 0 {
		t.Fatalf("LastDuration not recorded: %+v", st)
	}
	if !st.LastSuccess.Equal(clk.Now()) {
		t.Fatalf("LastSuccess = %v, want %v", st.LastSuccess, clk.Now())
	}

	// A failed save bumps Failed but leaves the last-success marks.
	bad := &Saver{Path: filepath.Join(t.TempDir(), "no", "such", "dir", "x.json"), Name: "corp"}
	if err := bad.Save(Stores{Whitelist: wl}, 0, clk.Now()); err == nil {
		t.Fatal("save into missing directory succeeded")
	}
	if st := bad.Stats(); st.Attempts != 1 || st.Failed != 1 || st.LastDuration != 0 {
		t.Fatalf("failed-save stats = %+v", st)
	}
}
