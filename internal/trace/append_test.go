package trace

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"
	"time"
)

// jsonEncode renders r exactly as the old json.Encoder-based Writer did
// (minus the trailing newline): the reference AppendJSON must match
// byte-for-byte.
func jsonEncode(t *testing.T, r Record) []byte {
	t.Helper()
	b, err := json.Marshal(&r)
	if err != nil {
		t.Fatalf("json.Marshal: %v", err)
	}
	return b
}

func checkSame(t *testing.T, r Record) {
	t.Helper()
	want := jsonEncode(t, r)
	got := r.AppendJSON(nil)
	if !bytes.Equal(got, want) {
		t.Errorf("AppendJSON mismatch:\n got %s\nwant %s", got, want)
	}
}

func TestAppendJSONMatchesEncodingJSON(t *testing.T) {
	base := time.Date(2010, 7, 1, 9, 30, 0, 0, time.UTC)
	cases := []Record{
		{At: base, Company: "scn-1", MsgID: "scn-1-000001", From: "a@b.example",
			Rcpt: "u@scn-1.example", Subject: "hello there friend", Size: 1234,
			ClientIP: "192.0.2.1", Class: "legit-new"},
		// Null reverse-path: "<>" exercises the HTML escaping (\u003c\u003e).
		{At: base, Company: "scn-2", MsgID: "scn-2-000002", From: "<>",
			Rcpt: "u@scn-2.example", Size: 2200, ClientIP: "192.0.2.9", Class: "null-sender"},
		// Empty omitempty fields: subject, client_ip, class all absent.
		{At: base, Company: "c", MsgID: "id", From: "x@y.example", Rcpt: "z@w.example", Size: 0},
		// Virus flag present.
		{At: base, Company: "c", MsgID: "id", From: "x@y.example", Rcpt: "z@w.example",
			Size: 9, Virus: true},
		// Sub-second timestamp: RFC3339Nano trims trailing zeros.
		{At: base.Add(123456000 * time.Nanosecond), Company: "c", MsgID: "id",
			From: "x@y.example", Rcpt: "z@w.example", Size: 1},
		{At: base.Add(1 * time.Nanosecond), Company: "c", MsgID: "id",
			From: "x@y.example", Rcpt: "z@w.example", Size: 1},
		// Strings needing escapes: quotes, backslash, control chars, HTML.
		{At: base, Company: `a"b\c`, MsgID: "tab\tnl\ncr\rbell\x07", From: "<x&y>@z.example",
			Rcpt: "r@d.example", Subject: "a<b>&c \x00 \x1f", Size: 5},
		// Non-ASCII, U+2028/U+2029, and invalid UTF-8.
		{At: base, Company: "héllo wörld", MsgID: "id\u2028sep\u2029par", From: "ok@d.example",
			Rcpt: "r@d.example", Subject: "bad\xffutf8\xc3(", Size: 5},
		// Negative size (never generated, but the encoder must not care).
		{At: base, Company: "c", MsgID: "id", From: "f@d.example", Rcpt: "r@d.example", Size: -42},
	}
	for i, r := range cases {
		rc := r
		t.Run("", func(t *testing.T) {
			checkSame(t, rc)
			_ = i
		})
	}
}

// TestAppendJSONRandomized fuzzes record fields (printable and hostile
// byte strings, random sub-second timestamps) against encoding/json.
func TestAppendJSONRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randStr := func() string {
		n := rng.Intn(20)
		b := make([]byte, n)
		for i := range b {
			// Bias toward printable ASCII but include arbitrary bytes.
			if rng.Intn(4) > 0 {
				b[i] = byte(0x20 + rng.Intn(0x5f))
			} else {
				b[i] = byte(rng.Intn(256))
			}
		}
		return string(b)
	}
	for i := 0; i < 500; i++ {
		r := Record{
			At:       time.Date(2010, 7, 1+rng.Intn(28), rng.Intn(24), rng.Intn(60), rng.Intn(60), rng.Intn(1e9), time.UTC),
			Company:  randStr(),
			MsgID:    randStr(),
			From:     randStr(),
			Rcpt:     randStr(),
			Subject:  randStr(),
			Size:     rng.Intn(100000),
			ClientIP: randStr(),
			Class:    randStr(),
			Virus:    rng.Intn(2) == 0,
		}
		checkSame(t, r)
	}
}

// TestWriterOutputMatchesOldEncoder writes records through the Writer
// and checks each line equals the old json.Encoder rendering, and that
// the Reader round-trips them.
func TestWriterOutputMatchesOldEncoder(t *testing.T) {
	recs := []Record{
		{At: time.Date(2010, 7, 1, 0, 0, 0, 0, time.UTC), Company: "scn-1",
			MsgID: "scn-1-000001", From: "<>", Rcpt: "u@scn-1.example", Size: 100, Class: "null-sender"},
		{At: time.Date(2010, 7, 1, 1, 2, 3, 456789012, time.UTC), Company: "scn-2",
			MsgID: "scn-2-000001", From: "p@q.example", Rcpt: "v@scn-2.example",
			Subject: "a<subject>&more", Size: 4567, ClientIP: "100.64.0.1", Class: "spam", Virus: true},
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Name: "t"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		w.Write(r)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(buf.Bytes(), []byte("\n"))
	if len(lines) != len(recs)+2 { // header + records + trailing empty
		t.Fatalf("got %d lines, want %d", len(lines), len(recs)+2)
	}
	for i, r := range recs {
		want := jsonEncode(t, r)
		if !bytes.Equal(lines[i+1], want) {
			t.Errorf("line %d:\n got %s\nwant %s", i+1, lines[i+1], want)
		}
	}
	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rd.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round-trip count %d, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("round-trip record %d:\n got %+v\nwant %+v", i, got[i], recs[i])
		}
	}
}

// BenchmarkAppendJSON measures the hot encode path.
func BenchmarkAppendJSON(b *testing.B) {
	r := Record{
		At: time.Date(2010, 7, 3, 14, 0, 0, 0, time.UTC), Company: "scn-7",
		MsgID: "scn-7-003141", From: "fake1234@bystander03.example",
		Rcpt: "user0042@scn-7.example", Subject: "cheap replica watches best deal today",
		Size: 4200, ClientIP: "100.64.3.17", Class: "spam",
	}
	buf := make([]byte, 0, 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = r.AppendJSON(buf[:0])
	}
}
