// Package trace records and replays message workloads. A trace is the
// synthetic stand-in for the paper's captured production mail streams:
// once a workload is frozen to a file, the *same byte-identical traffic*
// can be replayed against differently-configured engines (filter chains,
// greylisting, SPF) for apples-to-apples comparisons — the experimental
// discipline a measurement study needs when it cannot rerun the world.
//
// Format: one JSON object per line (JSONL), streaming-friendly in both
// directions; a header line carries metadata.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"
	"unicode/utf8"

	"repro/internal/mail"
)

// FormatVersion identifies the trace schema.
const FormatVersion = 1

// Header is the first line of a trace file.
type Header struct {
	Version  int       `json:"version"`
	Name     string    `json:"name"`
	Seed     int64     `json:"seed,omitempty"`
	Created  time.Time `json:"created"`
	Comment  string    `json:"comment,omitempty"`
	Messages int64     `json:"messages,omitempty"` // optional, informational
}

// Record is one traced message: everything the MTA-IN saw, plus the
// ground-truth class label for scoring.
type Record struct {
	At       time.Time `json:"at"`
	Company  string    `json:"company"`
	MsgID    string    `json:"id"`
	From     string    `json:"from"` // "<>" for the null reverse-path
	Rcpt     string    `json:"rcpt"`
	Subject  string    `json:"subject,omitempty"`
	Size     int       `json:"size"`
	ClientIP string    `json:"client_ip,omitempty"`
	Class    string    `json:"class,omitempty"` // ground truth
	Virus    bool      `json:"virus,omitempty"`
}

// ToMessage reconstructs the mail.Message. Unparsable recipient
// addresses reconstruct as the zero Address (the malformed-mail case the
// MTA must reject — traces preserve it).
func (r Record) ToMessage() *mail.Message {
	m := &mail.Message{
		ID:       r.MsgID,
		Subject:  r.Subject,
		Size:     r.Size,
		ClientIP: r.ClientIP,
		Received: r.At,
	}
	if from, err := mail.ParseAddress(r.From); err == nil {
		m.EnvelopeFrom = from
	}
	m.HeaderFrom = m.EnvelopeFrom
	if rcpt, err := mail.ParseAddress(r.Rcpt); err == nil {
		m.Rcpt = rcpt
	}
	return m
}

// AppendJSON appends r's JSON encoding to dst and returns the extended
// slice. The output is byte-identical to what encoding/json produces for
// the same Record (field order, omitempty handling, HTML-safe escaping,
// RFC3339Nano timestamps) — traces written through it replay against
// files written by older json.Encoder-based versions and vice versa —
// but it allocates nothing beyond dst growth, where the reflective
// encoder costs several allocations per record on the workload hot path.
func (r Record) AppendJSON(dst []byte) []byte {
	dst = append(dst, `{"at":"`...)
	dst = r.At.AppendFormat(dst, time.RFC3339Nano)
	dst = append(dst, `","company":`...)
	dst = appendJSONString(dst, r.Company)
	dst = append(dst, `,"id":`...)
	dst = appendJSONString(dst, r.MsgID)
	dst = append(dst, `,"from":`...)
	dst = appendJSONString(dst, r.From)
	dst = append(dst, `,"rcpt":`...)
	dst = appendJSONString(dst, r.Rcpt)
	if r.Subject != "" {
		dst = append(dst, `,"subject":`...)
		dst = appendJSONString(dst, r.Subject)
	}
	dst = append(dst, `,"size":`...)
	dst = strconv.AppendInt(dst, int64(r.Size), 10)
	if r.ClientIP != "" {
		dst = append(dst, `,"client_ip":`...)
		dst = appendJSONString(dst, r.ClientIP)
	}
	if r.Class != "" {
		dst = append(dst, `,"class":`...)
		dst = appendJSONString(dst, r.Class)
	}
	if r.Virus {
		dst = append(dst, `,"virus":true`...)
	}
	return append(dst, '}')
}

const jsonHex = "0123456789abcdef"

// appendJSONString appends s as a JSON string with exactly the escaping
// encoding/json applies by default: control characters, quote and
// backslash, the HTML-sensitive <, > and & as \u00xx, invalid UTF-8 as
// �, and U+2028/U+2029 (legal JSON, illegal JavaScript) escaped.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch c {
			case '\\', '"':
				dst = append(dst, '\\', c)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', jsonHex[c>>4], jsonHex[c&0xf])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', jsonHex[c&0xf])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// FromMessage builds a Record from a message.
func FromMessage(company string, m *mail.Message, class string) Record {
	return Record{
		At:       m.Received,
		Company:  company,
		MsgID:    m.ID,
		From:     m.EnvelopeFrom.String(),
		Rcpt:     m.Rcpt.String(),
		Subject:  m.Subject,
		Size:     m.Size,
		ClientIP: m.ClientIP,
		Class:    class,
	}
}

// Writer streams a trace to an io.Writer.
type Writer struct {
	bw    *bufio.Writer
	buf   []byte // reusable per-record encode buffer
	count int64
	err   error
}

// NewWriter writes the header and returns a Writer.
func NewWriter(w io.Writer, h Header) (*Writer, error) {
	h.Version = FormatVersion
	bw := bufio.NewWriter(w)
	if err := json.NewEncoder(bw).Encode(&h); err != nil {
		return nil, fmt.Errorf("trace: header: %w", err)
	}
	return &Writer{bw: bw, buf: make([]byte, 0, 512)}, nil
}

// Write appends one record. Errors are sticky. Records are rendered by
// Record.AppendJSON into one reused buffer, so the steady-state write
// path allocates nothing.
func (w *Writer) Write(r Record) {
	if w.err != nil {
		return
	}
	w.buf = r.AppendJSON(w.buf[:0])
	w.buf = append(w.buf, '\n')
	if _, err := w.bw.Write(w.buf); err != nil {
		w.err = err
		return
	}
	w.count++
}

// Count returns records written so far.
func (w *Writer) Count() int64 { return w.count }

// Flush drains buffers and reports the first sticky error.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.bw.Flush()
}

// Reader streams a trace from an io.Reader.
type Reader struct {
	dec    *json.Decoder
	header Header
}

// NewReader consumes the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var h Header
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("trace: header: %w", err)
	}
	if h.Version != FormatVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", h.Version)
	}
	return &Reader{dec: dec, header: h}, nil
}

// Header returns the trace metadata.
func (r *Reader) Header() Header { return r.header }

// Next returns the next record, or io.EOF.
func (r *Reader) Next() (Record, error) {
	var rec Record
	if err := r.dec.Decode(&rec); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("trace: record: %w", err)
	}
	return rec, nil
}

// ReadAll drains the trace into memory.
func (r *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

// Replayer feeds a trace into per-company sinks in timestamp order.
// Traces are written in order, so replay is a single pass.
type Replayer struct {
	reader *Reader
	// Deliver receives each reconstructed message with its company and
	// ground-truth class.
	Deliver func(company string, m *mail.Message, class string)
}

// Replay drains the trace through the Deliver callback, returning the
// number of messages replayed.
func (rp *Replayer) Replay() (int64, error) {
	if rp.Deliver == nil {
		return 0, fmt.Errorf("trace: Replayer.Deliver is nil")
	}
	var n int64
	for {
		rec, err := rp.reader.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		rp.Deliver(rec.Company, rec.ToMessage(), rec.Class)
		n++
	}
}

// NewReplayer wraps a Reader.
func NewReplayer(r *Reader) *Replayer { return &Replayer{reader: r} }
