package trace

import (
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/mail"
)

var t0 = time.Date(2010, 7, 1, 8, 30, 0, 0, time.UTC)

func sampleRecords() []Record {
	return []Record{
		{
			At: t0, Company: "corp-a", MsgID: "m-1",
			From: "alice@example.com", Rcpt: "bob@corp-a.example",
			Subject: "hello there", Size: 2048, ClientIP: "192.0.2.1", Class: "legit-new",
		},
		{
			At: t0.Add(time.Minute), Company: "corp-b", MsgID: "m-2",
			From: "<>", Rcpt: "challenge@corp-b.example",
			Subject: "Undelivered Mail Returned to Sender", Size: 1200, Class: "null-sender",
		},
		{
			At: t0.Add(2 * time.Minute), Company: "corp-a", MsgID: "m-3",
			From: "fake123@bystander.example", Rcpt: "bob@corp-a.example",
			Subject: "buy cheap meds online now best price guaranteed today", Size: 4000,
			ClientIP: "100.64.0.7", Class: "spam", Virus: true,
		},
	}
}

func writeTrace(t *testing.T) string {
	t.Helper()
	var sb strings.Builder
	w, err := NewWriter(&sb, Header{Name: "test-trace", Seed: 42, Created: t0, Comment: "unit test"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sampleRecords() {
		w.Write(r)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 3 {
		t.Fatalf("Count = %d", w.Count())
	}
	return sb.String()
}

func TestRoundTrip(t *testing.T) {
	data := writeTrace(t)
	r, err := NewReader(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	h := r.Header()
	if h.Name != "test-trace" || h.Seed != 42 || h.Version != FormatVersion {
		t.Fatalf("header = %+v", h)
	}
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()
	if len(recs) != len(want) {
		t.Fatalf("records = %d", len(recs))
	}
	for i := range want {
		if recs[i].MsgID != want[i].MsgID || recs[i].From != want[i].From ||
			recs[i].Class != want[i].Class || !recs[i].At.Equal(want[i].At) {
			t.Fatalf("record %d = %+v, want %+v", i, recs[i], want[i])
		}
	}
}

func TestToMessageReconstruction(t *testing.T) {
	recs := sampleRecords()
	m := recs[0].ToMessage()
	if m.EnvelopeFrom.String() != "alice@example.com" || m.Rcpt.String() != "bob@corp-a.example" {
		t.Fatalf("addresses = %v -> %v", m.EnvelopeFrom, m.Rcpt)
	}
	if m.Size != 2048 || !m.Received.Equal(t0) || m.ClientIP != "192.0.2.1" {
		t.Fatalf("fields lost: %+v", m)
	}
	// Null sender round-trips.
	dsn := recs[1].ToMessage()
	if !dsn.EnvelopeFrom.IsNull() {
		t.Fatalf("null sender lost: %v", dsn.EnvelopeFrom)
	}
}

func TestFromMessageRoundTrip(t *testing.T) {
	m := &mail.Message{
		ID:           "m-9",
		EnvelopeFrom: mail.MustParseAddress("x@y.example"),
		Rcpt:         mail.MustParseAddress("u@corp.example"),
		Subject:      "subject",
		Size:         512,
		ClientIP:     "10.0.0.1",
		Received:     t0,
	}
	rec := FromMessage("corp", m, "spam")
	back := rec.ToMessage()
	if back.ID != m.ID || back.EnvelopeFrom != m.EnvelopeFrom || back.Rcpt != m.Rcpt ||
		back.Size != m.Size || !back.Received.Equal(m.Received) {
		t.Fatalf("round trip lost fields: %+v", back)
	}
}

func TestMalformedRcptPreserved(t *testing.T) {
	rec := Record{At: t0, MsgID: "m-bad", From: "a@b.example", Rcpt: "not an address"}
	m := rec.ToMessage()
	if m.Rcpt != (mail.Address{}) {
		t.Fatalf("malformed rcpt = %v, want zero", m.Rcpt)
	}
}

func TestReplayer(t *testing.T) {
	data := writeTrace(t)
	r, err := NewReader(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	type got struct {
		company, class string
		id             string
	}
	var seen []got
	rp := NewReplayer(r)
	rp.Deliver = func(company string, m *mail.Message, class string) {
		seen = append(seen, got{company, class, m.ID})
	}
	n, err := rp.Replay()
	if err != nil || n != 3 {
		t.Fatalf("Replay = %d, %v", n, err)
	}
	if seen[0].company != "corp-a" || seen[1].class != "null-sender" || seen[2].id != "m-3" {
		t.Fatalf("replay order/content wrong: %+v", seen)
	}
}

func TestReplayerNilDeliver(t *testing.T) {
	r, _ := NewReader(strings.NewReader(writeTrace(t)))
	if _, err := NewReplayer(r).Replay(); err == nil {
		t.Fatal("nil Deliver accepted")
	}
}

func TestReaderRejectsBadHeader(t *testing.T) {
	if _, err := NewReader(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage header accepted")
	}
	if _, err := NewReader(strings.NewReader(`{"version": 99}` + "\n")); err == nil {
		t.Fatal("future version accepted")
	}
}

func TestReaderPartialRecord(t *testing.T) {
	data := writeTrace(t) + "{broken json\n"
	r, err := NewReader(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for {
		_, err := r.Next()
		if err == io.EOF {
			t.Fatal("broken record reached EOF silently")
		}
		if err != nil {
			break // the broken record errors out — correct
		}
		count++
	}
	if count != 3 {
		t.Fatalf("valid records before error = %d", count)
	}
}
