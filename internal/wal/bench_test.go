package wal

import (
	"testing"
	"time"
)

// BenchmarkWALAppend measures group-commit append throughput: parallel
// appenders feeding the single background flusher. The interesting
// numbers are ns/op (append latency without the fsync wait) and
// allocs/op, which the alloc test below pins at <= 1.
func BenchmarkWALAppend(b *testing.B) {
	l, _, err := Open(Options{Dir: b.TempDir(), FsyncInterval: time.Millisecond, SegmentBytes: 64 << 20}, 0, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	rec := testRecord(1)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := l.Append(rec); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	if err := l.Sync(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkWALAppendSync measures the full durability round trip: every
// append followed by a Sync barrier, so the group-commit window is what
// sets the latency floor.
func BenchmarkWALAppendSync(b *testing.B) {
	l, _, err := Open(Options{Dir: b.TempDir(), FsyncInterval: 200 * time.Microsecond, SegmentBytes: 64 << 20}, 0, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	rec := testRecord(1)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := l.Append(rec); err != nil {
				b.Error(err)
				return
			}
			if err := l.Sync(); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// TestAppendAllocs is the CI gate for the zero-allocation append path:
// the encoder writes into the log's reusable batch buffer, so in steady
// state an append must cost at most one allocation (amortised buffer
// growth).
func TestAppendAllocs(t *testing.T) {
	l, _, err := Open(Options{Dir: t.TempDir(), Manual: true, SegmentBytes: 1 << 30}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	rec := testRecord(1)
	// Warm the batch buffer past its growth phase, then flush so the
	// recycled buffer is reused.
	for i := 0; i < 4096; i++ {
		if _, err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(2000, func() {
		if _, err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 1 {
		t.Fatalf("Append allocates %.2f allocs/op, want <= 1", avg)
	}
}
