package wal

import (
	"fmt"
	"time"

	"repro/internal/greylist"
	"repro/internal/mail"
	"repro/internal/reputation"
	"repro/internal/whitelist"
)

// Journal connects the state stores' change-journal hooks to a Log:
// every whitelist/blacklist mutation, reputation observation and
// greylist transition becomes one appended record. Appends are
// fail-open — a rejected append (fault injection) is counted by the log
// and the in-memory mutation proceeds, mirroring how the rest of the
// pipeline degrades rather than blocks.
type Journal struct {
	log *Log
	tap func(Record)
}

// NewJournal wraps log.
func NewJournal(log *Log) *Journal { return &Journal{log: log} }

// Log returns the underlying log.
func (j *Journal) Log() *Log { return j.log }

// SetTap installs a callback invoked with every successfully appended
// record (LSN filled in). The crash-restart experiment uses it to keep
// the shadow copy of the committed mutation sequence. Must be set
// before the journal is attached.
func (j *Journal) SetTap(fn func(Record)) { j.tap = fn }

// Emit journals one externally built record (the outbound spool builds
// its own transition records) with the same fail-open semantics and tap
// visibility as the store hooks. It returns the assigned LSN, 0 if the
// append was dropped.
func (j *Journal) Emit(r Record) uint64 { return j.append(r) }

// append writes one record, returning its LSN (0 if dropped).
func (j *Journal) append(r Record) uint64 {
	lsn, err := j.log.Append(r)
	if err != nil {
		return 0
	}
	if j.tap != nil {
		r.LSN = lsn
		j.tap(r)
	}
	return lsn
}

// Attach installs the change-journal hooks on the given stores (any may
// be nil). The record's Origin names the event that caused the
// mutation: for whitelist entries that is the engine's entry source
// ("challenge", "digest", "outbound", ...), for reputation the recorded
// outcome ("delivered", "solved", ...).
func (j *Journal) Attach(wl *whitelist.Store, rep *reputation.Store, gl *greylist.Store) {
	if wl != nil {
		wl.SetJournal(func(m whitelist.Mutation) {
			rec := Record{
				Time:   m.Entry.Added,
				User:   m.User.String(),
				Sender: m.Entry.Addr.String(),
			}
			switch m.Op {
			case whitelist.MutAddWhite:
				rec.Op = OpWhiteAdd
				rec.Origin = m.Entry.Source.String()
				rec.Value = int64(m.Entry.Source)
			case whitelist.MutAddBlack:
				rec.Op = OpBlackAdd
				rec.Origin = m.Entry.Source.String()
				rec.Value = int64(m.Entry.Source)
			case whitelist.MutRemoveWhite:
				rec.Op = OpWhiteRemove
				rec.Origin = "remove"
			default:
				return
			}
			j.append(rec)
		})
	}
	if rep != nil {
		rep.SetJournal(func(sender mail.Address, ip string, o reputation.Outcome, at time.Time) uint64 {
			return j.append(Record{
				Time:   at,
				Op:     OpReputation,
				Origin: o.String(),
				Sender: sender.String(),
				IP:     ip,
				Value:  int64(o),
			})
		})
	}
	if gl != nil {
		gl.SetJournal(func(t greylist.ExportedTuple) {
			rec := Record{
				Time:   t.FirstSeen,
				Op:     OpGreylist,
				Origin: "greylist",
				User:   t.Key,
			}
			if !t.PassedAt.IsZero() {
				rec.Aux = t.PassedAt.UnixNano()
			}
			j.append(rec)
		})
	}
}

// Apply folds one journalled record back into the stores (WAL replay
// and the experiment's shadow copy). Stores may be nil to skip an op
// class. Unknown ops are ignored — an old binary replaying a newer
// log's extra record types must still boot.
func Apply(r Record, wl *whitelist.Store, rep *reputation.Store, gl *greylist.Store) error {
	switch r.Op {
	case OpWhiteAdd, OpBlackAdd, OpWhiteRemove:
		if wl == nil {
			return nil
		}
		user, err := mail.ParseAddress(r.User)
		if err != nil {
			return fmt.Errorf("wal: record %d user %q: %v", r.LSN, r.User, err)
		}
		sender, err := mail.ParseAddress(r.Sender)
		if err != nil {
			return fmt.Errorf("wal: record %d sender %q: %v", r.LSN, r.Sender, err)
		}
		m := whitelist.Mutation{
			User:  user,
			Entry: whitelist.Entry{Addr: sender, Source: whitelist.Source(r.Value), Added: r.Time},
		}
		switch r.Op {
		case OpWhiteAdd:
			m.Op = whitelist.MutAddWhite
		case OpBlackAdd:
			m.Op = whitelist.MutAddBlack
		case OpWhiteRemove:
			m.Op = whitelist.MutRemoveWhite
		}
		wl.Apply(m)
	case OpReputation:
		if rep == nil {
			return nil
		}
		sender, err := mail.ParseAddress(r.Sender)
		if err != nil {
			return fmt.Errorf("wal: record %d sender %q: %v", r.LSN, r.Sender, err)
		}
		rep.Apply(sender, r.IP, reputation.Outcome(r.Value), r.Time, r.LSN)
	case OpGreylist:
		if gl == nil {
			return nil
		}
		t := greylist.ExportedTuple{Key: r.User, FirstSeen: r.Time}
		if r.Aux != 0 {
			t.PassedAt = time.Unix(0, r.Aux).UTC()
		}
		gl.Apply(t)
	}
	return nil
}
