// Package wal implements the durable write-ahead log for the filter's
// mutable state: every whitelist, reputation and greylist mutation is
// appended as a framed record before (or atomically with) its in-memory
// effect, so a crash loses at most the un-fsynced tail instead of a
// whole snapshot interval.
//
// On-disk layout: a directory of segment files named wal-%016x.seg by
// the LSN of their first record. Each segment starts with an 8-byte
// magic and the first LSN, followed by frames:
//
//	u32 LE payload length | u32 LE CRC32-C of payload | payload
//
// The payload is a compact varint encoding of one Record. Frames are
// self-delimiting and checksummed, so replay walks a segment until the
// first short, oversized or checksum-failing frame and truncates there:
// a torn tail (the normal result of a crash mid-write) is data loss
// bounded by the group-commit window, never a boot failure.
//
// LSNs are assigned at append, start at 1 and are gapless and strictly
// monotonic across segment rotations and restarts, which is what lets a
// snapshot record a cut ("state covers LSNs <= N") and compaction delete
// sealed segments wholly below it.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"time"
)

// Op identifies the mutation a record carries.
type Op uint8

// Record operations. Values are part of the on-disk format; never
// renumber, only append.
const (
	// OpWhiteAdd adds Sender to User's whitelist (Value = whitelist.Source).
	OpWhiteAdd Op = 1 + iota
	// OpBlackAdd adds Sender to User's blacklist.
	OpBlackAdd
	// OpWhiteRemove deletes Sender from User's whitelist.
	OpWhiteRemove
	// OpReputation records one outcome observation (Value =
	// reputation.Outcome) against Sender/IP.
	OpReputation
	// OpGreylist sets one greylist tuple (User = tuple key, Time =
	// first-seen, Aux = passed-at unix nanoseconds or 0).
	OpGreylist
	// OpSpoolEnqueue admits one outbound challenge into the durable
	// spool (User = original message ID, Sender = destination address,
	// Value = challenge size, Aux = issued-at unix nanoseconds, Blob =
	// JSON of the remaining challenge fields).
	OpSpoolEnqueue
	// OpSpoolAttempt records a non-terminal delivery attempt (User =
	// message ID, Origin = error class, Value = attempt count, Aux =
	// next-try unix nanoseconds, Blob = last error text).
	OpSpoolAttempt
	// OpSpoolSent marks a spool item delivered (User = message ID,
	// Value = attempt count).
	OpSpoolSent
	// OpSpoolBounced marks a spool item permanently rejected (User =
	// message ID, Origin = error class, Value = attempt count, Blob =
	// last error text).
	OpSpoolBounced
	// OpSpoolExpired marks a spool item expired after exhausting its
	// retry schedule (User = message ID, Origin = last error class,
	// Value = attempt count, Blob = last error text).
	OpSpoolExpired
)

// String returns the op label.
func (o Op) String() string {
	switch o {
	case OpWhiteAdd:
		return "white-add"
	case OpBlackAdd:
		return "black-add"
	case OpWhiteRemove:
		return "white-remove"
	case OpReputation:
		return "reputation"
	case OpGreylist:
		return "greylist"
	case OpSpoolEnqueue:
		return "spool-enqueue"
	case OpSpoolAttempt:
		return "spool-attempt"
	case OpSpoolSent:
		return "spool-sent"
	case OpSpoolBounced:
		return "spool-bounced"
	case OpSpoolExpired:
		return "spool-expired"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Record is one journalled mutation. Field use varies by Op (see the Op
// constants); Origin names the event that produced the mutation (the
// engine's whitelist source, the reputation outcome, "greylist", ...)
// so operators reading a dump can see *why* state changed.
type Record struct {
	LSN    uint64
	Time   time.Time
	Op     Op
	Origin string
	User   string
	Sender string
	IP     string
	Value  int64
	Aux    int64
	// Blob is an op-specific extension payload appended after the fixed
	// fields. It decodes to "" from records written before it existed,
	// and old readers ignore it, so both directions stay compatible.
	Blob string
}

// castagnoli is the CRC32-C table (the polynomial with hardware support
// on both amd64 and arm64, and the standard WAL checksum choice).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const (
	// frameHeader is the per-record framing overhead.
	frameHeader = 8
	// maxRecordBytes bounds a single payload; anything larger in a length
	// header is framing garbage, not a record.
	maxRecordBytes = 1 << 20
)

// appendString appends a length-prefixed string.
func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// appendFrame appends r as one framed record to dst and returns the
// extended slice. It allocates nothing beyond dst growth, which is what
// keeps Append at zero amortised allocations.
func appendFrame(dst []byte, r *Record) []byte {
	base := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // length + CRC backfilled below
	p := len(dst)
	dst = binary.AppendUvarint(dst, r.LSN)
	dst = binary.AppendVarint(dst, r.Time.UnixNano())
	dst = append(dst, byte(r.Op))
	dst = appendString(dst, r.Origin)
	dst = appendString(dst, r.User)
	dst = appendString(dst, r.Sender)
	dst = appendString(dst, r.IP)
	dst = binary.AppendVarint(dst, r.Value)
	dst = binary.AppendVarint(dst, r.Aux)
	if r.Blob != "" {
		dst = appendString(dst, r.Blob)
	}
	payload := dst[p:]
	binary.LittleEndian.PutUint32(dst[base:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[base+4:], crc32.Checksum(payload, castagnoli))
	return dst
}

// errBadFrame marks any framing failure: short header, absurd length,
// short payload, checksum mismatch, or undecodable payload. Replay
// treats every flavour identically — truncate the segment here.
var errBadFrame = fmt.Errorf("wal: bad frame")

// decodeFrame parses the first frame in b. It returns the record and
// the total frame size, or errBadFrame if b does not start with a
// complete, checksum-clean frame.
func decodeFrame(b []byte) (Record, int, error) {
	if len(b) < frameHeader {
		return Record{}, 0, errBadFrame
	}
	n := int(binary.LittleEndian.Uint32(b))
	if n <= 0 || n > maxRecordBytes || len(b) < frameHeader+n {
		return Record{}, 0, errBadFrame
	}
	payload := b[frameHeader : frameHeader+n]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(b[4:]) {
		return Record{}, 0, errBadFrame
	}
	r, err := decodePayload(payload)
	if err != nil {
		return Record{}, 0, errBadFrame
	}
	return r, frameHeader + n, nil
}

// decodePayload parses the varint body of one record.
func decodePayload(p []byte) (Record, error) {
	var r Record
	var err error
	pos := 0
	uv := func() uint64 {
		v, n := binary.Uvarint(p[pos:])
		if n <= 0 {
			err = io.ErrUnexpectedEOF
			return 0
		}
		pos += n
		return v
	}
	sv := func() int64 {
		v, n := binary.Varint(p[pos:])
		if n <= 0 {
			err = io.ErrUnexpectedEOF
			return 0
		}
		pos += n
		return v
	}
	str := func() string {
		n := int(uv())
		if err != nil {
			return ""
		}
		if n < 0 || pos+n > len(p) {
			err = io.ErrUnexpectedEOF
			return ""
		}
		s := string(p[pos : pos+n])
		pos += n
		return s
	}
	r.LSN = uv()
	r.Time = time.Unix(0, sv()).UTC()
	if err != nil {
		return r, err
	}
	if pos >= len(p) {
		return r, io.ErrUnexpectedEOF
	}
	r.Op = Op(p[pos])
	pos++
	r.Origin = str()
	r.User = str()
	r.Sender = str()
	r.IP = str()
	r.Value = sv()
	r.Aux = sv()
	if err == nil && pos < len(p) {
		r.Blob = str()
	}
	return r, err
}
