package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/faults"
)

// Segment file format constants.
const (
	segMagic      = "CRWAL001"
	segHeaderSize = len(segMagic) + 8 // magic + u64 LE first LSN
	segPattern    = "wal-*.seg"
)

// Options parameterises a Log. Zero values get defaults.
type Options struct {
	// Dir is the segment directory (created if missing).
	Dir string
	// SegmentBytes is the rotation threshold (default 4 MiB). A segment
	// is sealed at the first group-commit boundary at or past it.
	SegmentBytes int64
	// FsyncInterval is the group-commit window: after the first append
	// of a batch the flusher waits this long for more appenders before
	// the single write+fsync (default 5ms; 0 = fsync as fast as appends
	// arrive, still batching whatever accumulates during each fsync).
	// Sync() always short-circuits the window.
	FsyncInterval time.Duration
	// Manual disables the background flusher: nothing reaches disk until
	// Sync or Close. Deterministic tests and the crash-restart experiment
	// use this to control exactly which records are durable.
	Manual bool
	// Injector is an optional fault source (targets "wal-append" and
	// "wal-fsync").
	Injector faults.Injector
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.FsyncInterval < 0 {
		o.FsyncInterval = 0
	}
	return o
}

// ReplayStats summarises what Open found on disk.
type ReplayStats struct {
	// Replayed counts records handed to the apply callback.
	Replayed int
	// LastLSN is the last valid record's LSN (0 for an empty log).
	LastLSN uint64
	// Truncated reports whether a torn or corrupt tail was cut off.
	Truncated bool
	// TornBytes is how many trailing bytes the truncation discarded.
	TornBytes int64
}

// Metrics is an operational snapshot of the log.
type Metrics struct {
	Appends        int64
	Fsyncs         int64
	Bytes          int64 // payload+frame bytes durably written
	Replayed       int64 // records replayed at Open
	Compactions    int64 // CompactThrough calls that removed segments
	DroppedAppends int64 // appends rejected by fault injection
	FsyncErrors    int64 // failed or fault-injected fsyncs
	LastLSN        uint64
	DurableLSN     uint64
	Segments       int
	PendingBytes   int64 // encoded but not yet written
}

// segInfo tracks one on-disk segment.
type segInfo struct {
	name  string
	first uint64 // LSN of the segment's first record
}

// Log is the append-only write-ahead log. Append is safe for concurrent
// use and never blocks on the disk: records are framed into an
// in-memory batch that a single flusher goroutine writes and fsyncs
// (group commit). Sync is the durability barrier.
type Log struct {
	opts Options

	// flushMu serialises flushOnce (the only writer of seg files).
	flushMu sync.Mutex

	mu       sync.Mutex
	cond     *sync.Cond // broadcast on durable/flushErr progress
	buf      []byte     // encoded frames not yet handed to the flusher
	spare    []byte     // recycled batch buffer
	nextLSN  uint64
	appended uint64 // last assigned LSN
	written  uint64 // last LSN fully written to the OS
	durable  uint64 // last LSN fsynced
	flushErr error  // latest flush outcome (nil on success)
	flushSeq uint64 // bumped after every flush attempt
	seg      *os.File
	segs     []segInfo // oldest first; last entry is the active segment
	segBytes int64     // active segment size including header
	closed   bool

	appends, fsyncs, bytes   int64
	replayed                 int64
	compactions              int64
	droppedAppends, fsyncErr int64

	stopCh  chan struct{}
	flushCh chan struct{}
	syncCh  chan struct{}
	done    chan struct{}
}

// segName returns the file name for a segment starting at first.
func segName(first uint64) string { return fmt.Sprintf("wal-%016x.seg", first) }

// parseSegName inverts segName.
func parseSegName(name string) (uint64, bool) {
	hex, ok := strings.CutPrefix(name, "wal-")
	if !ok {
		return 0, false
	}
	hex, ok = strings.CutSuffix(hex, ".seg")
	if !ok || len(hex) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// syncDir fsyncs a directory so created/removed entries are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Open replays the log in dir and opens it for appending. Every valid
// record with LSN > fromLSN is handed to apply in LSN order (apply may
// be nil to skip replay); the first bad frame truncates its segment and
// discards any later segments — a torn tail is bounded data loss, never
// a boot failure. fromLSN is the newest snapshot's cut, which also seeds
// LSN monotonicity when the log was fully compacted away.
func Open(opts Options, fromLSN uint64, apply func(Record) error) (*Log, ReplayStats, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, ReplayStats{}, errors.New("wal: no directory")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, ReplayStats{}, fmt.Errorf("wal: %w", err)
	}
	l := &Log{
		opts:    opts,
		stopCh:  make(chan struct{}),
		flushCh: make(chan struct{}, 1),
		syncCh:  make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	l.cond = sync.NewCond(&l.mu)

	names, err := filepath.Glob(filepath.Join(opts.Dir, segPattern))
	if err != nil {
		return nil, ReplayStats{}, fmt.Errorf("wal: %w", err)
	}
	sort.Strings(names) // fixed-width hex first-LSN: lexical == numeric

	var stats ReplayStats
	var drop []string // segments beyond a tear, deleted below
	for i, path := range names {
		first, ok := parseSegName(filepath.Base(path))
		if !ok {
			continue
		}
		good, tornBytes, err := l.replaySegment(path, fromLSN, apply, &stats)
		if err != nil {
			return nil, stats, err
		}
		if tornBytes > 0 || good < 0 {
			stats.Truncated = true
			if good < 0 {
				// Unreadable header: the segment never finished being
				// created. Drop it and everything after it.
				drop = names[i:]
			} else {
				stats.TornBytes += tornBytes
				l.segs = append(l.segs, segInfo{name: filepath.Base(path), first: first})
				drop = names[i+1:]
			}
			break
		}
		l.segs = append(l.segs, segInfo{name: filepath.Base(path), first: first})
	}
	for _, path := range drop {
		if fi, err := os.Stat(path); err == nil {
			stats.TornBytes += fi.Size()
		}
		if err := os.Remove(path); err != nil {
			return nil, stats, fmt.Errorf("wal: drop torn segment: %w", err)
		}
	}

	l.nextLSN = max(stats.LastLSN, fromLSN) + 1
	l.appended = l.nextLSN - 1
	l.written = l.appended
	l.durable = l.appended
	l.replayed = int64(stats.Replayed)

	if len(l.segs) == 0 {
		if err := l.createSegment(l.nextLSN); err != nil {
			return nil, stats, err
		}
	} else {
		active := filepath.Join(opts.Dir, l.segs[len(l.segs)-1].name)
		f, err := os.OpenFile(active, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, stats, fmt.Errorf("wal: reopen active segment: %w", err)
		}
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, stats, fmt.Errorf("wal: %w", err)
		}
		l.seg, l.segBytes = f, fi.Size()
	}

	if !opts.Manual {
		go l.run()
	} else {
		close(l.done) // no flusher to wait for
	}
	return l, stats, nil
}

// replaySegment streams one segment's records into apply. It returns
// good >= 0 (the number of records seen) and tornBytes > 0 if the
// segment ends in a bad frame, which replaySegment truncates in place.
// good < 0 means the header itself was unreadable.
func (l *Log) replaySegment(path string, fromLSN uint64, apply func(Record) error, stats *ReplayStats) (good int, tornBytes int64, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return -1, 0, fmt.Errorf("wal: read segment: %w", err)
	}
	if len(b) < segHeaderSize || string(b[:len(segMagic)]) != segMagic {
		return -1, 0, nil
	}
	off := segHeaderSize
	for off < len(b) {
		rec, n, derr := decodeFrame(b[off:])
		if derr != nil {
			break
		}
		if rec.LSN > fromLSN && apply != nil {
			if aerr := apply(rec); aerr != nil {
				return good, 0, fmt.Errorf("wal: replay LSN %d: %w", rec.LSN, aerr)
			}
			stats.Replayed++
		}
		stats.LastLSN = rec.LSN
		off += n
		good++
	}
	if off < len(b) {
		tornBytes = int64(len(b) - off)
		if err := os.Truncate(path, int64(off)); err != nil {
			return good, tornBytes, fmt.Errorf("wal: truncate torn tail: %w", err)
		}
	}
	return good, tornBytes, nil
}

// createSegment makes a fresh active segment starting at first. Caller
// must hold flushMu or be single-threaded (Open).
func (l *Log) createSegment(first uint64) error {
	var hdr [16]byte
	copy(hdr[:], segMagic)
	binary.LittleEndian.PutUint64(hdr[len(segMagic):], first)
	name := segName(first)
	path := filepath.Join(l.opts.Dir, name)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	if _, err := f.Write(hdr[:segHeaderSize]); err != nil {
		f.Close()
		return fmt.Errorf("wal: segment header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: segment header sync: %w", err)
	}
	if err := syncDir(l.opts.Dir); err != nil {
		f.Close()
		return fmt.Errorf("wal: dir sync: %w", err)
	}
	if old := l.seg; old != nil {
		old.Close()
	}
	l.seg = f
	l.segBytes = int64(segHeaderSize)
	l.segs = append(l.segs, segInfo{name: name, first: first})
	return nil
}

// Append frames r, assigns its LSN and queues it for the next group
// commit. It returns immediately; durability requires Sync (or trust in
// the flush interval). The only error paths are fault injection and a
// closed log. Allocation-free in steady state.
func (l *Log) Append(r Record) (uint64, error) {
	if inj := l.opts.Injector; inj != nil {
		if d := inj.Decide("wal-append", 0); d.Err != nil {
			l.mu.Lock()
			l.droppedAppends++
			l.mu.Unlock()
			return 0, fmt.Errorf("wal: append: %w", d.Err)
		}
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, errors.New("wal: log closed")
	}
	r.LSN = l.nextLSN
	l.nextLSN++
	l.appended = r.LSN
	l.buf = appendFrame(l.buf, &r)
	l.appends++
	manual := l.opts.Manual
	l.mu.Unlock()
	if !manual {
		select {
		case l.flushCh <- struct{}{}:
		default:
		}
	}
	return r.LSN, nil
}

// run is the group-commit flusher: woken by the first append of a
// batch, it waits FsyncInterval for co-travellers (Sync short-circuits
// the wait), then writes and fsyncs the whole batch once.
func (l *Log) run() {
	defer close(l.done)
	for {
		select {
		case <-l.stopCh:
			l.flushOnce()
			return
		case <-l.syncCh:
		case <-l.flushCh:
			if iv := l.opts.FsyncInterval; iv > 0 {
				t := time.NewTimer(iv)
				select {
				case <-t.C:
				case <-l.syncCh:
					t.Stop()
				case <-l.stopCh:
					t.Stop()
					l.flushOnce()
					return
				}
			}
		}
		l.flushOnce()
	}
}

// flushOnce writes and fsyncs everything queued. It is the single
// writer of segment files; concurrency comes from batching, not from
// parallel writes.
func (l *Log) flushOnce() {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()

	l.mu.Lock()
	batch := l.buf
	target := l.appended
	if len(batch) == 0 && l.written == l.durable {
		l.flushSeq++
		l.cond.Broadcast()
		l.mu.Unlock()
		return
	}
	if l.spare != nil {
		l.buf = l.spare[:0]
		l.spare = nil
	} else {
		l.buf = nil
	}
	seg := l.seg
	l.mu.Unlock()

	var n int
	var err error
	if len(batch) > 0 {
		n, err = seg.Write(batch)
	}
	if err != nil {
		// Keep the unwritten remainder at the front of the queue: frames
		// must land contiguously after whatever partial bytes made it out.
		l.mu.Lock()
		rest := append([]byte(nil), batch[n:]...)
		l.buf = append(rest, l.buf...)
		l.spare = batch[:0]
		l.finishFlush(fmt.Errorf("wal: write: %w", err))
		l.mu.Unlock()
		return
	}

	if inj := l.opts.Injector; inj != nil {
		if d := inj.Decide("wal-fsync", 0); d.Err != nil {
			l.mu.Lock()
			l.written = target
			l.fsyncErr++
			l.spare = batch[:0]
			l.finishFlush(fmt.Errorf("wal: fsync: %w", d.Err))
			l.mu.Unlock()
			return
		}
	}
	serr := seg.Sync()

	l.mu.Lock()
	l.written = target
	if serr != nil {
		l.fsyncErr++
		l.spare = batch[:0]
		l.finishFlush(fmt.Errorf("wal: fsync: %w", serr))
		l.mu.Unlock()
		return
	}
	l.durable = target
	l.fsyncs++
	l.bytes += int64(len(batch))
	l.segBytes += int64(len(batch))
	l.spare = batch[:0]
	rotate := l.segBytes >= l.opts.SegmentBytes
	l.finishFlush(nil)
	if rotate && !l.closed {
		if cerr := l.createSegment(target + 1); cerr != nil {
			l.flushErr = cerr
		}
	}
	l.mu.Unlock()
}

// finishFlush records a flush outcome. Caller holds l.mu.
func (l *Log) finishFlush(err error) {
	l.flushErr = err
	l.flushSeq++
	l.cond.Broadcast()
}

// Sync blocks until every record appended before the call is fsynced
// (the durability barrier), or returns the error that prevented it.
func (l *Log) Sync() error {
	l.mu.Lock()
	target := l.appended
	l.mu.Unlock()
	return l.syncTo(target)
}

func (l *Log) syncTo(target uint64) error {
	if l.opts.Manual {
		for {
			l.mu.Lock()
			if l.durable >= target {
				l.mu.Unlock()
				return nil
			}
			l.mu.Unlock()
			l.flushOnce()
			l.mu.Lock()
			done, err := l.durable >= target, l.flushErr
			l.mu.Unlock()
			if done {
				return nil
			}
			if err != nil {
				return err
			}
		}
	}
	select {
	case l.syncCh <- struct{}{}:
	default:
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	start := l.flushSeq
	for l.durable < target {
		if l.closed {
			return errors.New("wal: log closed")
		}
		if l.flushErr != nil && l.flushSeq > start {
			return l.flushErr
		}
		l.cond.Wait()
	}
	return nil
}

// Rotate flushes and seals the active segment, starting a fresh one, so
// a following CompactThrough can delete everything already snapshotted.
// A still-empty active segment is left alone.
func (l *Log) Rotate() error {
	if err := l.Sync(); err != nil {
		return err
	}
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: log closed")
	}
	if l.segBytes == int64(segHeaderSize) {
		return nil
	}
	return l.createSegment(l.durable + 1)
}

// CompactThrough deletes sealed segments all of whose records have
// LSN <= lsn — they are fully covered by a snapshot. The active segment
// is never touched (Rotate first to seal it).
func (l *Log) CompactThrough(lsn uint64) (removed int, err error) {
	l.mu.Lock()
	var rm []segInfo
	for len(l.segs) > 1 && l.segs[1].first <= lsn+1 {
		rm = append(rm, l.segs[0])
		l.segs = l.segs[1:]
	}
	if len(rm) > 0 {
		l.compactions++
	}
	dir := l.opts.Dir
	l.mu.Unlock()
	for _, s := range rm {
		if rerr := os.Remove(filepath.Join(dir, s.name)); rerr != nil && err == nil {
			err = fmt.Errorf("wal: compact: %w", rerr)
			continue
		}
		removed++
	}
	if removed > 0 {
		if serr := syncDir(dir); serr != nil && err == nil {
			err = fmt.Errorf("wal: compact dir sync: %w", serr)
		}
	}
	return removed, err
}

// LastLSN returns the most recently assigned LSN (0 if none).
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appended
}

// DurableLSN returns the newest fsynced LSN.
func (l *Log) DurableLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durable
}

// Metrics returns an operational snapshot.
func (l *Log) Metrics() Metrics {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Metrics{
		Appends:        l.appends,
		Fsyncs:         l.fsyncs,
		Bytes:          l.bytes,
		Replayed:       l.replayed,
		Compactions:    l.compactions,
		DroppedAppends: l.droppedAppends,
		FsyncErrors:    l.fsyncErr,
		LastLSN:        l.appended,
		DurableLSN:     l.durable,
		Segments:       len(l.segs),
		PendingBytes:   int64(len(l.buf)),
	}
}

// Segments returns the on-disk segment list, oldest first.
func (l *Log) Segments() []SegmentInfo {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SegmentInfo, 0, len(l.segs))
	for i, s := range l.segs {
		info := SegmentInfo{Name: s.name, FirstLSN: s.first, Active: i == len(l.segs)-1}
		if fi, err := os.Stat(filepath.Join(l.opts.Dir, s.name)); err == nil {
			info.Bytes = fi.Size()
		}
		out = append(out, info)
	}
	return out
}

// SegmentInfo describes one segment for the admin UI and dumps.
type SegmentInfo struct {
	Name     string
	FirstLSN uint64
	Bytes    int64
	Active   bool
}

// Close flushes everything and releases the log. Safe to call once.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.mu.Unlock()
	if !l.opts.Manual {
		close(l.stopCh)
		<-l.done
	} else {
		l.flushOnce()
	}
	l.mu.Lock()
	l.closed = true
	err := l.flushErr
	if l.durable < l.appended && err == nil {
		err = errors.New("wal: close with undurable tail")
	}
	seg := l.seg
	l.seg = nil
	l.cond.Broadcast()
	l.mu.Unlock()
	if seg != nil {
		if cerr := seg.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// CloneForCrash writes a crash image of the log into dstDir: segment
// files survive byte-for-byte (they hold only flushed data), and
// torn(pending) — the injected remains of the un-synced in-memory batch
// — is appended to the active segment, exactly what a power cut during
// the next group commit could leave. Manual-mode logs only (the flusher
// would race the copy).
func (l *Log) CloneForCrash(dstDir string, torn func([]byte) []byte) error {
	if !l.opts.Manual {
		return errors.New("wal: CloneForCrash needs Manual mode")
	}
	if err := os.MkdirAll(dstDir, 0o755); err != nil {
		return err
	}
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	for i, s := range l.segs {
		b, err := os.ReadFile(filepath.Join(l.opts.Dir, s.name))
		if err != nil {
			return err
		}
		if i == len(l.segs)-1 && len(l.buf) > 0 && torn != nil {
			b = append(b, torn(l.buf)...)
		}
		if err := os.WriteFile(filepath.Join(dstDir, s.name), b, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// Dump pretty-prints a single segment file to w (logstats -wal): the
// header, every decodable record, and where (if anywhere) the tail
// tears. It never modifies the file.
func Dump(w io.Writer, path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(b) < segHeaderSize || string(b[:len(segMagic)]) != segMagic {
		return fmt.Errorf("wal: %s: not a WAL segment (bad magic)", path)
	}
	first := binary.LittleEndian.Uint64(b[len(segMagic):segHeaderSize])
	fmt.Fprintf(w, "segment %s: first LSN %d, %d bytes\n", filepath.Base(path), first, len(b))
	off := segHeaderSize
	n := 0
	for off < len(b) {
		rec, sz, derr := decodeFrame(b[off:])
		if derr != nil {
			fmt.Fprintf(w, "TORN TAIL at offset %d: %d trailing bytes are not a valid frame (replay truncates here)\n",
				off, len(b)-off)
			return nil
		}
		fmt.Fprintf(w, "%8d  %s  %-12s origin=%-10s", rec.LSN,
			rec.Time.Format("2006-01-02T15:04:05.000Z07:00"), rec.Op, rec.Origin)
		switch rec.Op {
		case OpWhiteAdd, OpBlackAdd, OpWhiteRemove:
			fmt.Fprintf(w, " user=%s sender=%s", rec.User, rec.Sender)
		case OpReputation:
			fmt.Fprintf(w, " sender=%s ip=%s", rec.Sender, rec.IP)
		case OpGreylist:
			passed := "-"
			if rec.Aux != 0 {
				passed = time.Unix(0, rec.Aux).UTC().Format(time.RFC3339)
			}
			fmt.Fprintf(w, " tuple=%s passed=%s", rec.User, passed)
		case OpSpoolEnqueue:
			fmt.Fprintf(w, " msg=%s to=%s size=%d", rec.User, rec.Sender, rec.Value)
		case OpSpoolAttempt:
			next := "-"
			if rec.Aux != 0 {
				next = time.Unix(0, rec.Aux).UTC().Format(time.RFC3339)
			}
			fmt.Fprintf(w, " msg=%s attempts=%d next=%s", rec.User, rec.Value, next)
		case OpSpoolSent, OpSpoolBounced, OpSpoolExpired:
			fmt.Fprintf(w, " msg=%s attempts=%d", rec.User, rec.Value)
		}
		fmt.Fprintln(w)
		off += sz
		n++
	}
	fmt.Fprintf(w, "%d records, clean tail\n", n)
	return nil
}
