package wal

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/faults"
	"repro/internal/greylist"
	"repro/internal/mail"
	"repro/internal/reputation"
	"repro/internal/whitelist"
)

var t0 = time.Date(2006, 10, 1, 0, 0, 0, 0, time.UTC)

// testRecord builds a deterministic record for index i.
func testRecord(i int) Record {
	return Record{
		Time:   t0.Add(time.Duration(i) * time.Second),
		Op:     Op(1 + i%5),
		Origin: fmt.Sprintf("origin-%d", i%3),
		User:   fmt.Sprintf("user%d@example.com", i%7),
		Sender: fmt.Sprintf("sender%d@spam.example", i),
		IP:     fmt.Sprintf("192.0.2.%d", i%250),
		Value:  int64(i % 6),
		Aux:    int64(i) * 17,
	}
}

func openManual(t *testing.T, dir string, fromLSN uint64, apply func(Record) error) (*Log, ReplayStats) {
	t.Helper()
	l, st, err := Open(Options{Dir: dir, Manual: true}, fromLSN, apply)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, st
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, _ := openManual(t, dir, 0, nil)
	var want []Record
	for i := 0; i < 50; i++ {
		r := testRecord(i)
		lsn, err := l.Append(r)
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("LSN %d, want %d (gapless from 1)", lsn, i+1)
		}
		r.LSN = lsn
		want = append(want, r)
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	var got []Record
	l2, st := openManual(t, dir, 0, func(r Record) error { got = append(got, r); return nil })
	defer l2.Close()
	if st.Replayed != 50 || st.LastLSN != 50 || st.Truncated {
		t.Fatalf("replay stats = %+v", st)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed records differ\n got %+v\nwant %+v", got[:2], want[:2])
	}
	// New appends continue the LSN sequence.
	lsn, err := l2.Append(testRecord(99))
	if err != nil || lsn != 51 {
		t.Fatalf("post-replay Append = %d, %v; want 51", lsn, err)
	}
}

func TestReplaySkipsSnapshotCoveredRecords(t *testing.T) {
	dir := t.TempDir()
	l, _ := openManual(t, dir, 0, nil)
	for i := 0; i < 20; i++ {
		l.Append(testRecord(i))
	}
	l.Sync()
	l.Close()

	var got []Record
	l2, st := openManual(t, dir, 12, func(r Record) error { got = append(got, r); return nil })
	defer l2.Close()
	if st.Replayed != 8 {
		t.Fatalf("Replayed = %d, want 8", st.Replayed)
	}
	if got[0].LSN != 13 {
		t.Fatalf("first replayed LSN = %d, want 13", got[0].LSN)
	}
}

func TestFreshLogAfterFullCompaction(t *testing.T) {
	// A log whose segments were all compacted away must continue LSNs
	// from the snapshot cut, not restart at 1.
	dir := t.TempDir()
	l, _ := openManual(t, dir, 123, nil)
	defer l.Close()
	lsn, err := l.Append(testRecord(0))
	if err != nil || lsn != 124 {
		t.Fatalf("Append = %d, %v; want 124", lsn, err)
	}
}

func TestRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	l, st, err := Open(Options{Dir: dir, Manual: true, SegmentBytes: 512}, 0, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	_ = st
	const n = 100
	for i := 0; i < n; i++ {
		if _, err := l.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
		if i%10 == 9 {
			if err := l.Sync(); err != nil {
				t.Fatal(err)
			}
		}
	}
	l.Sync()
	if m := l.Metrics(); m.Segments < 3 {
		t.Fatalf("expected rotation to produce >= 3 segments, got %d", m.Segments)
	}

	// Snapshot cut at LSN 50, then compact: only segments wholly <= 50 go.
	removed, err := l.CompactThrough(50)
	if err != nil {
		t.Fatalf("CompactThrough: %v", err)
	}
	if removed == 0 {
		t.Fatal("compaction removed nothing")
	}
	l.Close()

	var got []Record
	l2, rst := openManual(t, dir, 50, func(r Record) error { got = append(got, r); return nil })
	defer l2.Close()
	if rst.Replayed != n-50 {
		t.Fatalf("replayed %d records after compaction, want %d", rst.Replayed, n-50)
	}
	for i, r := range got {
		if r.LSN != uint64(51+i) {
			t.Fatalf("record %d has LSN %d, want %d", i, r.LSN, 51+i)
		}
	}
}

func TestRotateSealsActiveSegment(t *testing.T) {
	dir := t.TempDir()
	l, _ := openManual(t, dir, 0, nil)
	defer l.Close()
	for i := 0; i < 10; i++ {
		l.Append(testRecord(i))
	}
	if err := l.Rotate(); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	if m := l.Metrics(); m.Segments != 2 {
		t.Fatalf("Segments = %d after Rotate, want 2", m.Segments)
	}
	// Rotate on an empty active segment is a no-op.
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if m := l.Metrics(); m.Segments != 2 {
		t.Fatalf("empty Rotate created a segment (%d)", m.Segments)
	}
	if removed, err := l.CompactThrough(10); err != nil || removed != 1 {
		t.Fatalf("CompactThrough = %d, %v; want 1 removed", removed, err)
	}
}

// TestTornTailEveryOffset is the crash-consistency fuzz: a committed
// log is truncated at EVERY byte offset, and separately corrupted at
// every byte offset, and replay must always (a) boot, (b) yield a
// strict prefix of the committed record sequence.
func TestTornTailEveryOffset(t *testing.T) {
	src := t.TempDir()
	l, _ := openManual(t, src, 0, nil)
	var committed []Record
	const n = 25
	for i := 0; i < n; i++ {
		r := testRecord(i)
		lsn, err := l.Append(r)
		if err != nil {
			t.Fatal(err)
		}
		r.LSN = lsn
		committed = append(committed, r)
	}
	l.Sync()
	l.Close()

	segs, err := filepath.Glob(filepath.Join(src, segPattern))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want exactly 1 segment, got %v (%v)", segs, err)
	}
	orig, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Base(segs[0])

	check := func(t *testing.T, img []byte, label string) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, base), img, 0o644); err != nil {
			t.Fatal(err)
		}
		var got []Record
		l2, _, err := Open(Options{Dir: dir, Manual: true}, 0, func(r Record) error {
			got = append(got, r)
			return nil
		})
		if err != nil {
			t.Fatalf("%s: boot failed: %v", label, err)
		}
		defer l2.Close()
		if len(got) > len(committed) {
			t.Fatalf("%s: replay invented records (%d > %d)", label, len(got), len(committed))
		}
		for i := range got {
			if got[i] != committed[i] {
				t.Fatalf("%s: replayed record %d differs from committed", label, i)
			}
		}
	}

	t.Run("truncate", func(t *testing.T) {
		for off := 0; off <= len(orig); off++ {
			check(t, orig[:off], fmt.Sprintf("truncate@%d", off))
		}
	})
	t.Run("corrupt", func(t *testing.T) {
		for off := 0; off < len(orig); off++ {
			img := append([]byte(nil), orig...)
			img[off] ^= 0x5a
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, base), img, 0o644); err != nil {
				t.Fatal(err)
			}
			var got []Record
			l2, _, err := Open(Options{Dir: dir, Manual: true}, 0, func(r Record) error {
				got = append(got, r)
				return nil
			})
			if err != nil {
				t.Fatalf("corrupt@%d: boot failed: %v", off, err)
			}
			l2.Close()
			// A corrupted byte invalidates the frame containing it (and
			// all later frames); everything before must survive intact.
			if len(got) > len(committed) {
				t.Fatalf("corrupt@%d: replay invented records", off)
			}
			for i := range got {
				if got[i] != committed[i] {
					t.Fatalf("corrupt@%d: replay is not a committed prefix", off)
				}
			}
			if off >= segHeaderSize {
				// CRC must catch any corruption at or after the frame
				// that contains the flipped byte.
				covered := 0
				pos := segHeaderSize
				for covered < len(committed) {
					_, sz, err := decodeFrame(orig[pos:])
					if err != nil {
						break
					}
					if off < pos+sz {
						break
					}
					pos += sz
					covered++
				}
				if len(got) > covered {
					t.Fatalf("corrupt@%d: replay kept %d records, only %d precede the corruption", off, len(got), covered)
				}
			}
		}
	})
	t.Run("torn-write-injector", func(t *testing.T) {
		rng := rand.New(rand.NewSource(7))
		for trial := 0; trial < 200; trial++ {
			check(t, faults.TornWrite(rng, orig), fmt.Sprintf("torn-%d", trial))
		}
	})
}

func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir, FsyncInterval: time.Millisecond, SegmentBytes: 8 << 10}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, per = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := l.Append(testRecord(g*per + i)); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
				if i%10 == 0 {
					if err := l.Sync(); err != nil {
						t.Errorf("Sync: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	m := l.Metrics()
	if m.DurableLSN != goroutines*per {
		t.Fatalf("DurableLSN = %d, want %d", m.DurableLSN, goroutines*per)
	}
	if m.Fsyncs >= m.Appends {
		t.Fatalf("no batching: %d fsyncs for %d appends", m.Fsyncs, m.Appends)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	count := 0
	last := uint64(0)
	l2, _, err := Open(Options{Dir: dir, Manual: true}, 0, func(r Record) error {
		count++
		if r.LSN != last+1 {
			return fmt.Errorf("gap: %d after %d", r.LSN, last)
		}
		last = r.LSN
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if count != goroutines*per {
		t.Fatalf("replayed %d, want %d", count, goroutines*per)
	}
}

// flakyInjector fires a given kind for one target while armed.
type flakyInjector struct {
	mu     sync.Mutex
	target string
	armed  bool
}

func (f *flakyInjector) Decide(target string, _ time.Duration) faults.Decision {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.armed && target == f.target {
		return faults.Decision{Err: faults.ErrInjected, Kind: faults.KindError}
	}
	return faults.Decision{}
}

func TestFaultInjection(t *testing.T) {
	t.Run("append", func(t *testing.T) {
		inj := &flakyInjector{target: "wal-append", armed: true}
		l, _, err := Open(Options{Dir: t.TempDir(), Manual: true, Injector: inj}, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		if _, err := l.Append(testRecord(0)); !errors.Is(err, faults.ErrInjected) {
			t.Fatalf("Append under fault = %v, want injected error", err)
		}
		inj.mu.Lock()
		inj.armed = false
		inj.mu.Unlock()
		if _, err := l.Append(testRecord(1)); err != nil {
			t.Fatalf("Append after recovery: %v", err)
		}
		if m := l.Metrics(); m.DroppedAppends != 1 {
			t.Fatalf("DroppedAppends = %d, want 1", m.DroppedAppends)
		}
	})
	t.Run("fsync", func(t *testing.T) {
		inj := &flakyInjector{target: "wal-fsync", armed: true}
		l, _, err := Open(Options{Dir: t.TempDir(), Manual: true, Injector: inj}, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		l.Append(testRecord(0))
		if err := l.Sync(); !errors.Is(err, faults.ErrInjected) {
			t.Fatalf("Sync under fsync fault = %v, want injected error", err)
		}
		if m := l.Metrics(); m.DurableLSN != 0 || m.FsyncErrors == 0 {
			t.Fatalf("fault advanced durability: %+v", m)
		}
		inj.mu.Lock()
		inj.armed = false
		inj.mu.Unlock()
		if err := l.Sync(); err != nil {
			t.Fatalf("Sync after fault cleared: %v", err)
		}
		if m := l.Metrics(); m.DurableLSN != 1 {
			t.Fatalf("DurableLSN = %d after retry, want 1", m.DurableLSN)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestJournalRoundTrip drives real stores through the journal, replays
// the log into fresh stores, and requires byte-identical exports.
func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, _ := openManual(t, dir, 0, nil)
	clk := clock.NewSim(t0)
	wl := whitelist.NewStore(clk)
	rep := reputation.NewStore(reputation.Config{}, clk)
	gl := greylist.New(greylist.Config{}, clk)
	j := NewJournal(l)
	var tapped []Record
	j.SetTap(func(r Record) { tapped = append(tapped, r) })
	j.Attach(wl, rep, gl)

	user := mail.MustParseAddress("alice@corp.example")
	for i := 0; i < 30; i++ {
		sender := mail.MustParseAddress(fmt.Sprintf("Sender%d@remote.example", i))
		wl.AddWhite(user, sender, whitelist.Source(i%5))
		rep.Record(sender, fmt.Sprintf("198.51.100.%d", i), reputation.Outcome(i%6))
		gl.Check(fmt.Sprintf("203.0.113.%d", i), sender, user)
		clk.Advance(3 * time.Hour)
	}
	wl.AddBlack(user, mail.MustParseAddress("evil@spam.example"))
	wl.RemoveWhite(user, mail.MustParseAddress("sender3@remote.example"))
	rep.Record(mail.Null, "203.0.113.9", reputation.Bounced)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if len(tapped) == 0 {
		t.Fatal("tap saw no records")
	}
	for i, r := range tapped {
		if r.LSN != uint64(i+1) {
			t.Fatalf("tap record %d has LSN %d", i, r.LSN)
		}
	}

	clk2 := clock.NewSim(clk.Now())
	wl2 := whitelist.NewStore(clk2)
	rep2 := reputation.NewStore(reputation.Config{}, clk2)
	gl2 := greylist.New(greylist.Config{}, clk2)
	l2, st := openManual(t, dir, 0, func(r Record) error { return Apply(r, wl2, rep2, gl2) })
	defer l2.Close()
	if st.Replayed != len(tapped) {
		t.Fatalf("replayed %d, committed %d", st.Replayed, len(tapped))
	}

	mustJSON := func(v any) []byte {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if a, b := mustJSON(wl.Export()), mustJSON(wl2.Export()); !bytes.Equal(a, b) {
		t.Fatalf("whitelist exports differ\n%s\n%s", a, b)
	}
	if a, b := mustJSON(rep.Export()), mustJSON(rep2.Export()); !bytes.Equal(a, b) {
		t.Fatalf("reputation exports differ\n%s\n%s", a, b)
	}
	// Greylist: sweep deletions are deliberately not journalled (expired
	// tuples are semantically absent either way), so the live store is a
	// subset of the replayed one; every surviving tuple must match
	// exactly and every extra replayed tuple must be expired.
	replayed := make(map[string]greylist.ExportedTuple)
	for _, tu := range gl2.Export() {
		replayed[tu.Key] = tu
	}
	live := gl.Export()
	for _, tu := range live {
		got, ok := replayed[tu.Key]
		if !ok || got != tu {
			t.Fatalf("live greylist tuple %q missing or differing after replay", tu.Key)
		}
	}
	if len(replayed) < len(live) {
		t.Fatalf("replayed greylist smaller than live: %d < %d", len(replayed), len(live))
	}
}

func TestDump(t *testing.T) {
	dir := t.TempDir()
	l, _ := openManual(t, dir, 0, nil)
	for i := 0; i < 5; i++ {
		l.Append(testRecord(i))
	}
	l.Sync()
	l.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, segPattern))
	var buf bytes.Buffer
	if err := Dump(&buf, segs[0]); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "first LSN 1") || !strings.Contains(out, "5 records, clean tail") {
		t.Fatalf("Dump output:\n%s", out)
	}

	// Torn file: Dump reports the tear instead of erroring.
	b, _ := os.ReadFile(segs[0])
	torn := filepath.Join(dir, "torn.seg")
	os.WriteFile(torn, b[:len(b)-3], 0o644)
	buf.Reset()
	if err := Dump(&buf, torn); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "TORN TAIL") {
		t.Fatalf("Dump of torn segment:\n%s", buf.String())
	}
}
