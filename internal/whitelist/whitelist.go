// Package whitelist implements the per-user sender white- and blacklists
// that are the foundation of the challenge-response approach.
//
// The paper's product supports four ways an address enters a whitelist
// (§2 "Whitelisting process"): the sender solves a challenge, the user
// authorizes the sender from the daily digest, the user adds the address
// manually, or the user previously sent mail to that address. Each entry
// records its source and timestamp so the §4.3 change-rate analysis
// (Figure 9: distribution of new entries per 60 days) can be reproduced
// directly from the store.
package whitelist

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/mail"
)

// Source identifies how an entry was added to a list.
type Source int

// Whitelist entry sources (§2 of the paper).
const (
	// SourceChallenge: the sender solved the CAPTCHA challenge.
	SourceChallenge Source = iota
	// SourceDigest: the user authorized the sender from the daily digest.
	SourceDigest
	// SourceManual: the user imported the address by hand.
	SourceManual
	// SourceOutbound: the user sent a message to the address, which
	// implicitly whitelists it.
	SourceOutbound
	// SourceSeed: pre-existing entry from before the monitoring window
	// (the user's historical contact list).
	SourceSeed
)

// String returns a short label for the source.
func (s Source) String() string {
	switch s {
	case SourceChallenge:
		return "challenge"
	case SourceDigest:
		return "digest"
	case SourceManual:
		return "manual"
	case SourceOutbound:
		return "outbound"
	case SourceSeed:
		return "seed"
	default:
		return "unknown"
	}
}

// Entry is one sender address on a user's list.
type Entry struct {
	Addr   mail.Address
	Source Source
	Added  time.Time
}

// List is one user's whitelist (or blacklist). Not safe for concurrent
// use on its own; Store serialises access.
//
// Entries are keyed by the canonical sender Address (see
// mail.Address.Canonical), so membership checks on the dispatch hot
// path need no key-string allocation.
type List struct {
	entries map[mail.Address]Entry // by canonical sender address
	log     []Entry                // append-only change log (additions only)
}

func newList() *List {
	return &List{entries: make(map[mail.Address]Entry)}
}

// MutOp identifies the kind of list mutation carried by a Mutation.
type MutOp int

// List mutation kinds, journalled to the write-ahead log.
const (
	MutAddWhite MutOp = iota
	MutAddBlack
	MutRemoveWhite
)

// String returns a short label for the mutation kind.
func (o MutOp) String() string {
	switch o {
	case MutAddWhite:
		return "add-white"
	case MutAddBlack:
		return "add-black"
	case MutRemoveWhite:
		return "remove-white"
	default:
		return "unknown"
	}
}

// Mutation is one state change to a user's lists, as handed to the
// change journal. For removals only Entry.Addr and Entry.Added (the
// removal time) are meaningful.
type Mutation struct {
	Op    MutOp
	User  mail.Address
	Entry Entry
}

// Store holds the white- and blacklists of every user of one company's
// installation. It is safe for concurrent use.
type Store struct {
	clk clock.Clock

	mu      sync.RWMutex
	white   map[mail.Address]*List // by canonical user address
	black   map[mail.Address]*List
	journal func(Mutation)
}

// NewStore returns an empty store using clk for entry timestamps.
func NewStore(clk clock.Clock) *Store {
	return &Store{
		clk:   clk,
		white: make(map[mail.Address]*List),
		black: make(map[mail.Address]*List),
	}
}

// SetJournal installs the change-journal hook. The hook is invoked with
// the store lock held, once per applied mutation, in apply order; it
// must not call back into the store. Replays via Apply and bulk Import
// are not journalled (they reconstruct state that is already durable).
func (s *Store) SetJournal(fn func(Mutation)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.journal = fn
}

// Apply re-applies a journalled mutation during WAL replay. Additions
// are insert-if-absent (replaying a mutation whose effect is already in
// the snapshot is a no-op), removals delete-if-present, so replaying any
// in-order suffix of the mutation history is idempotent.
func (s *Store) Apply(m Mutation) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch m.Op {
	case MutAddWhite, MutAddBlack:
		lists := s.white
		if m.Op == MutAddBlack {
			lists = s.black
		}
		l := s.list(lists, m.User)
		sk := m.Entry.Addr.Canonical()
		if _, ok := l.entries[sk]; ok {
			return
		}
		l.entries[sk] = m.Entry
		l.log = append(l.log, m.Entry)
	case MutRemoveWhite:
		l := s.white[m.User.Canonical()]
		if l == nil {
			return
		}
		delete(l.entries, m.Entry.Addr.Canonical())
	}
}

func (s *Store) list(m map[mail.Address]*List, user mail.Address) *List {
	uk := user.Canonical()
	l := m[uk]
	if l == nil {
		l = newList()
		m[uk] = l
	}
	return l
}

// AddWhite adds sender to user's whitelist with the given source. Adding
// an address that is already present is a no-op (the first source wins),
// matching the product's behaviour and keeping the change log an honest
// record of *new* entries for the Figure 9 churn statistics. It returns
// true if the entry was new.
func (s *Store) AddWhite(user, sender mail.Address, src Source) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	l := s.list(s.white, user)
	sk := sender.Canonical()
	if _, ok := l.entries[sk]; ok {
		return false
	}
	e := Entry{Addr: sender, Source: src, Added: s.clk.Now()}
	l.entries[sk] = e
	l.log = append(l.log, e)
	if s.journal != nil {
		s.journal(Mutation{Op: MutAddWhite, User: user, Entry: e})
	}
	return true
}

// AddBlack adds sender to user's blacklist. Returns true if new.
func (s *Store) AddBlack(user, sender mail.Address) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	l := s.list(s.black, user)
	sk := sender.Canonical()
	if _, ok := l.entries[sk]; ok {
		return false
	}
	e := Entry{Addr: sender, Source: SourceManual, Added: s.clk.Now()}
	l.entries[sk] = e
	l.log = append(l.log, e)
	if s.journal != nil {
		s.journal(Mutation{Op: MutAddBlack, User: user, Entry: e})
	}
	return true
}

// RemoveWhite deletes sender from user's whitelist. Removals are not
// logged (the paper counts only new entries). Returns true if present.
func (s *Store) RemoveWhite(user, sender mail.Address) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	l := s.white[user.Canonical()]
	if l == nil {
		return false
	}
	sk := sender.Canonical()
	if _, ok := l.entries[sk]; !ok {
		return false
	}
	delete(l.entries, sk)
	if s.journal != nil {
		s.journal(Mutation{Op: MutRemoveWhite, User: user, Entry: Entry{Addr: sender, Added: s.clk.Now()}})
	}
	return true
}

// IsWhite reports whether sender is on user's whitelist.
func (s *Store) IsWhite(user, sender mail.Address) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	l := s.white[user.Canonical()]
	if l == nil {
		return false
	}
	_, ok := l.entries[sender.Canonical()]
	return ok
}

// IsBlack reports whether sender is on user's blacklist.
func (s *Store) IsBlack(user, sender mail.Address) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	l := s.black[user.Canonical()]
	if l == nil {
		return false
	}
	_, ok := l.entries[sender.Canonical()]
	return ok
}

// WhiteSize returns the number of entries on user's whitelist.
func (s *Store) WhiteSize(user mail.Address) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	l := s.white[user.Canonical()]
	if l == nil {
		return 0
	}
	return len(l.entries)
}

// AdditionsBetween returns the number of whitelist entries user gained in
// [from, to), optionally restricted to the given sources (none = all).
// SourceSeed entries are excluded unless explicitly requested: the paper
// measures churn "excluding new users".
func (s *Store) AdditionsBetween(user mail.Address, from, to time.Time, sources ...Source) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	l := s.white[user.Canonical()]
	if l == nil {
		return 0
	}
	want := func(src Source) bool {
		if len(sources) == 0 {
			return src != SourceSeed
		}
		for _, w := range sources {
			if w == src {
				return true
			}
		}
		return false
	}
	n := 0
	for _, e := range l.log {
		if !e.Added.Before(from) && e.Added.Before(to) && want(e.Source) {
			n++
		}
	}
	return n
}

// ModifiedUsers returns, sorted, the users whose whitelists gained at
// least one non-seed entry in [from, to).
func (s *Store) ModifiedUsers(from, to time.Time) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for user, l := range s.white {
		for _, e := range l.log {
			if e.Source != SourceSeed && !e.Added.Before(from) && e.Added.Before(to) {
				out = append(out, user.Key())
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// Users returns all user keys with a whitelist, sorted.
func (s *Store) Users() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.white))
	for user := range s.white {
		out = append(out, user.Key())
	}
	sort.Strings(out)
	return out
}

// ExportedList is the serialisable form of one user's lists, used by the
// persistence layer (internal/store).
type ExportedList struct {
	User  string  `json:"user"`
	White []Entry `json:"white,omitempty"`
	Black []Entry `json:"black,omitempty"`
}

// Export returns every user's lists in a stable order (users sorted,
// entries sorted by addition time then address), suitable for snapshots.
func (s *Store) Export() []ExportedList {
	s.mu.RLock()
	defer s.mu.RUnlock()
	users := make(map[mail.Address]bool)
	for u := range s.white {
		users[u] = true
	}
	for u := range s.black {
		users[u] = true
	}
	keys := make([]mail.Address, 0, len(users))
	for u := range users {
		keys = append(keys, u)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Key() < keys[j].Key() })

	dump := func(l *List) []Entry {
		if l == nil {
			return nil
		}
		out := make([]Entry, 0, len(l.entries))
		for _, e := range l.entries {
			out = append(out, e)
		}
		sort.Slice(out, func(i, j int) bool {
			if !out[i].Added.Equal(out[j].Added) {
				return out[i].Added.Before(out[j].Added)
			}
			return out[i].Addr.Key() < out[j].Addr.Key()
		})
		return out
	}
	out := make([]ExportedList, 0, len(keys))
	for _, u := range keys {
		out = append(out, ExportedList{
			User:  u.Key(),
			White: dump(s.white[u]),
			Black: dump(s.black[u]),
		})
	}
	return out
}

// Import merges exported lists into the store, preserving the original
// sources and timestamps. Existing entries win (Import never overwrites).
func (s *Store) Import(lists []ExportedList) error {
	for _, l := range lists {
		user, err := mail.ParseAddress(l.User)
		if err != nil {
			return fmt.Errorf("whitelist: bad user %q: %v", l.User, err)
		}
		s.mu.Lock()
		wl := s.list(s.white, user)
		for _, e := range l.White {
			sk := e.Addr.Canonical()
			if _, ok := wl.entries[sk]; ok {
				continue
			}
			wl.entries[sk] = e
			wl.log = append(wl.log, e)
		}
		bl := s.list(s.black, user)
		for _, e := range l.Black {
			sk := e.Addr.Canonical()
			if _, ok := bl.entries[sk]; ok {
				continue
			}
			bl.entries[sk] = e
			bl.log = append(bl.log, e)
		}
		s.mu.Unlock()
	}
	return nil
}

// CountBySource tallies all whitelist additions (across users) per source.
func (s *Store) CountBySource() map[Source]int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[Source]int)
	for _, l := range s.white {
		for _, e := range l.log {
			out[e.Source]++
		}
	}
	return out
}
