package whitelist

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/clock"
	"repro/internal/mail"
)

var (
	t0  = time.Date(2010, 7, 1, 0, 0, 0, 0, time.UTC)
	bob = mail.MustParseAddress("bob@corp.example")
	ali = mail.MustParseAddress("alice@example.com")
)

func TestAddWhiteAndLookup(t *testing.T) {
	s := NewStore(clock.NewSim(t0))
	if s.IsWhite(bob, ali) {
		t.Fatal("empty store claims whitelisted")
	}
	if !s.AddWhite(bob, ali, SourceChallenge) {
		t.Fatal("first add returned false")
	}
	if !s.IsWhite(bob, ali) {
		t.Fatal("added sender not whitelisted")
	}
	// Other user's list is unaffected.
	carol := mail.MustParseAddress("carol@corp.example")
	if s.IsWhite(carol, ali) {
		t.Fatal("whitelist leaked across users")
	}
}

func TestAddWhiteIdempotent(t *testing.T) {
	s := NewStore(clock.NewSim(t0))
	s.AddWhite(bob, ali, SourceChallenge)
	if s.AddWhite(bob, ali, SourceDigest) {
		t.Fatal("duplicate add returned true")
	}
	if s.WhiteSize(bob) != 1 {
		t.Fatalf("WhiteSize = %d, want 1", s.WhiteSize(bob))
	}
	// Change log must contain exactly one entry.
	if n := s.AdditionsBetween(bob, t0, t0.Add(time.Hour)); n != 1 {
		t.Fatalf("log additions = %d, want 1", n)
	}
}

func TestCaseInsensitiveMatch(t *testing.T) {
	s := NewStore(clock.NewSim(t0))
	s.AddWhite(bob, mail.MustParseAddress("Alice@Example.COM"), SourceManual)
	if !s.IsWhite(bob, ali) {
		t.Fatal("whitelist match must be case-insensitive")
	}
}

func TestBlacklist(t *testing.T) {
	s := NewStore(clock.NewSim(t0))
	spammer := mail.MustParseAddress("junk@spam.example")
	if !s.AddBlack(bob, spammer) {
		t.Fatal("AddBlack returned false")
	}
	if !s.IsBlack(bob, spammer) {
		t.Fatal("blacklisted sender not found")
	}
	if s.IsBlack(bob, ali) {
		t.Fatal("innocent sender blacklisted")
	}
	if s.AddBlack(bob, spammer) {
		t.Fatal("duplicate AddBlack returned true")
	}
}

func TestRemoveWhite(t *testing.T) {
	s := NewStore(clock.NewSim(t0))
	s.AddWhite(bob, ali, SourceManual)
	if !s.RemoveWhite(bob, ali) {
		t.Fatal("RemoveWhite returned false for present entry")
	}
	if s.IsWhite(bob, ali) {
		t.Fatal("entry survives removal")
	}
	if s.RemoveWhite(bob, ali) {
		t.Fatal("RemoveWhite returned true for absent entry")
	}
	if s.RemoveWhite(mail.MustParseAddress("ghost@corp.example"), ali) {
		t.Fatal("RemoveWhite returned true for unknown user")
	}
}

func TestAdditionsBetweenWindowAndSources(t *testing.T) {
	clk := clock.NewSim(t0)
	s := NewStore(clk)
	s.AddWhite(bob, mail.MustParseAddress("seed@old.example"), SourceSeed)
	s.AddWhite(bob, mail.MustParseAddress("a1@x.example"), SourceChallenge)
	clk.Advance(24 * time.Hour)
	s.AddWhite(bob, mail.MustParseAddress("a2@x.example"), SourceDigest)
	clk.Advance(24 * time.Hour)
	s.AddWhite(bob, mail.MustParseAddress("a3@x.example"), SourceOutbound)

	// Seed entries are excluded by default.
	if n := s.AdditionsBetween(bob, t0, t0.Add(72*time.Hour)); n != 3 {
		t.Fatalf("all additions = %d, want 3", n)
	}
	// Window slicing: only the day-1 entry.
	if n := s.AdditionsBetween(bob, t0.Add(12*time.Hour), t0.Add(36*time.Hour)); n != 1 {
		t.Fatalf("windowed = %d, want 1", n)
	}
	// Source filter.
	if n := s.AdditionsBetween(bob, t0, t0.Add(72*time.Hour), SourceDigest); n != 1 {
		t.Fatalf("digest-only = %d, want 1", n)
	}
	if n := s.AdditionsBetween(bob, t0, t0.Add(72*time.Hour), SourceSeed); n != 1 {
		t.Fatalf("explicit seed = %d, want 1", n)
	}
	// Unknown user.
	if n := s.AdditionsBetween(mail.MustParseAddress("no@corp.example"), t0, t0.Add(time.Hour)); n != 0 {
		t.Fatalf("unknown user additions = %d", n)
	}
}

func TestModifiedUsers(t *testing.T) {
	clk := clock.NewSim(t0)
	s := NewStore(clk)
	u1 := mail.MustParseAddress("u1@corp.example")
	u2 := mail.MustParseAddress("u2@corp.example")
	u3 := mail.MustParseAddress("u3@corp.example")
	s.AddWhite(u1, ali, SourceChallenge)
	s.AddWhite(u2, ali, SourceSeed) // seed does not count as modification
	s.AddWhite(u3, ali, SourceManual)
	got := s.ModifiedUsers(t0, t0.Add(time.Hour))
	if len(got) != 2 || got[0] != u1.Key() || got[1] != u3.Key() {
		t.Fatalf("ModifiedUsers = %v", got)
	}
}

func TestUsersSorted(t *testing.T) {
	s := NewStore(clock.NewSim(t0))
	s.AddWhite(mail.MustParseAddress("zeta@corp.example"), ali, SourceSeed)
	s.AddWhite(mail.MustParseAddress("alpha@corp.example"), ali, SourceSeed)
	u := s.Users()
	if len(u) != 2 || u[0] != "alpha@corp.example" {
		t.Fatalf("Users = %v", u)
	}
}

func TestCountBySource(t *testing.T) {
	s := NewStore(clock.NewSim(t0))
	s.AddWhite(bob, mail.MustParseAddress("a@x.example"), SourceChallenge)
	s.AddWhite(bob, mail.MustParseAddress("b@x.example"), SourceChallenge)
	s.AddWhite(bob, mail.MustParseAddress("c@x.example"), SourceDigest)
	got := s.CountBySource()
	if got[SourceChallenge] != 2 || got[SourceDigest] != 1 {
		t.Fatalf("CountBySource = %v", got)
	}
}

func TestSourceString(t *testing.T) {
	for src, want := range map[Source]string{
		SourceChallenge: "challenge", SourceDigest: "digest",
		SourceManual: "manual", SourceOutbound: "outbound", SourceSeed: "seed",
		Source(42): "unknown",
	} {
		if src.String() != want {
			t.Errorf("Source(%d).String() = %q, want %q", int(src), src.String(), want)
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewStore(clock.NewSim(t0))
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			sender := mail.MustParseAddress(fmt.Sprintf("s%d@x.example", i))
			s.AddWhite(bob, sender, SourceChallenge)
		}(i)
		go func(i int) {
			defer wg.Done()
			s.IsWhite(bob, ali)
		}(i)
	}
	wg.Wait()
	if s.WhiteSize(bob) != 64 {
		t.Fatalf("WhiteSize = %d, want 64", s.WhiteSize(bob))
	}
}

// Property: after adding any set of distinct senders, each is whitelisted
// and WhiteSize equals the number of distinct keys.
func TestAddAllFoundProperty(t *testing.T) {
	f := func(locals []uint16) bool {
		s := NewStore(clock.NewSim(t0))
		distinct := make(map[string]bool)
		for _, l := range locals {
			a := mail.Address{Local: fmt.Sprintf("u%d", l), Domain: "p.example"}
			s.AddWhite(bob, a, SourceManual)
			distinct[a.Key()] = true
			if !s.IsWhite(bob, a) {
				return false
			}
		}
		return s.WhiteSize(bob) == len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkIsWhite(b *testing.B) {
	s := NewStore(clock.NewSim(t0))
	for i := 0; i < 500; i++ {
		s.AddWhite(bob, mail.MustParseAddress(fmt.Sprintf("s%d@x.example", i)), SourceSeed)
	}
	target := mail.MustParseAddress("s250@x.example")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.IsWhite(bob, target)
	}
}

func BenchmarkAddWhite(b *testing.B) {
	s := NewStore(clock.NewSim(t0))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.AddWhite(bob, mail.Address{Local: fmt.Sprintf("s%d", i), Domain: "x.example"}, SourceChallenge)
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	clk := clock.NewSim(t0)
	src := NewStore(clk)
	src.AddWhite(bob, mail.MustParseAddress("w1@x.example"), SourceChallenge)
	clk.Advance(time.Hour)
	src.AddWhite(bob, mail.MustParseAddress("w2@x.example"), SourceDigest)
	src.AddBlack(bob, mail.MustParseAddress("b1@x.example"))
	carol := mail.MustParseAddress("carol@corp.example")
	src.AddWhite(carol, mail.MustParseAddress("w3@x.example"), SourceOutbound)

	exported := src.Export()
	if len(exported) != 2 {
		t.Fatalf("exported users = %d, want 2", len(exported))
	}
	// Users sorted; bob first.
	if exported[0].User != bob.Key() {
		t.Fatalf("export order = %v", exported[0].User)
	}
	// Entries sorted by addition time.
	if len(exported[0].White) != 2 || exported[0].White[0].Addr.Local != "w1" {
		t.Fatalf("bob white export = %+v", exported[0].White)
	}
	if len(exported[0].Black) != 1 {
		t.Fatalf("bob black export = %+v", exported[0].Black)
	}

	dst := NewStore(clk)
	if err := dst.Import(exported); err != nil {
		t.Fatal(err)
	}
	if !dst.IsWhite(bob, mail.MustParseAddress("w2@x.example")) ||
		!dst.IsBlack(bob, mail.MustParseAddress("b1@x.example")) ||
		!dst.IsWhite(carol, mail.MustParseAddress("w3@x.example")) {
		t.Fatal("import lost entries")
	}
	// Timestamps/sources survive: windowed queries behave identically.
	n := dst.AdditionsBetween(bob, t0, t0.Add(30*time.Minute), SourceChallenge)
	if n != 1 {
		t.Fatalf("restored windowed additions = %d, want 1", n)
	}
}

func TestImportIdempotent(t *testing.T) {
	clk := clock.NewSim(t0)
	src := NewStore(clk)
	src.AddWhite(bob, ali, SourceManual)
	exported := src.Export()

	dst := NewStore(clk)
	if err := dst.Import(exported); err != nil {
		t.Fatal(err)
	}
	if err := dst.Import(exported); err != nil {
		t.Fatal(err)
	}
	if dst.WhiteSize(bob) != 1 {
		t.Fatalf("double import duplicated entries: %d", dst.WhiteSize(bob))
	}
	// The change log also stays single (Figure 9 stats unaffected).
	if n := dst.AdditionsBetween(bob, t0, t0.Add(time.Hour)); n != 1 {
		t.Fatalf("log additions after double import = %d", n)
	}
}

func TestImportRejectsBadUser(t *testing.T) {
	clk := clock.NewSim(t0)
	dst := NewStore(clk)
	err := dst.Import([]ExportedList{{User: "not an address"}})
	if err == nil {
		t.Fatal("bad user accepted")
	}
}

func TestExportEmptyStore(t *testing.T) {
	s := NewStore(clock.NewSim(t0))
	if got := s.Export(); len(got) != 0 {
		t.Fatalf("empty export = %v", got)
	}
}
