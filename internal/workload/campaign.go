package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/mail"
)

// Class is the ground-truth label of a generated message. The CR system
// never sees it; the measurement pipeline uses it to score outcomes and
// to drive simulated user behaviour (digest weeding).
type Class int

// Traffic classes.
const (
	// ClassMalformed: syntactically broken addressing.
	ClassMalformed Class = iota
	// ClassUnresolvable: sender domain without DNS.
	ClassUnresolvable
	// ClassRelayAttempt: addressed to a domain the server may not serve.
	ClassRelayAttempt
	// ClassRejectedSender: administratively banned sender.
	ClassRejectedSender
	// ClassUnknownRecipient: spam to a non-existent local user.
	ClassUnknownRecipient
	// ClassWhite: mail from an already-whitelisted correspondent.
	ClassWhite
	// ClassBlack: mail from a blacklisted sender.
	ClassBlack
	// ClassLegitNew: first contact from a real human correspondent.
	ClassLegitNew
	// ClassNewsletter: automated marketing/newsletter mail.
	ClassNewsletter
	// ClassNullSender: bounce/DSN with the null reverse-path.
	ClassNullSender
	// ClassSpam: campaign spam aimed at an existing user.
	ClassSpam
)

// String returns the class label.
func (c Class) String() string {
	switch c {
	case ClassMalformed:
		return "malformed"
	case ClassUnresolvable:
		return "unresolvable"
	case ClassRelayAttempt:
		return "relay-attempt"
	case ClassRejectedSender:
		return "rejected-sender"
	case ClassUnknownRecipient:
		return "unknown-recipient"
	case ClassWhite:
		return "white"
	case ClassBlack:
		return "black"
	case ClassLegitNew:
		return "legit-new"
	case ClassNewsletter:
		return "newsletter"
	case ClassNullSender:
		return "null-sender"
	case ClassSpam:
		return "spam"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Wanted reports whether a user would want this message delivered (used
// by the simulated digest weeding).
func (c Class) Wanted() bool {
	return c == ClassWhite || c == ClassLegitNew || c == ClassNewsletter
}

// subjectWords is the vocabulary for generated subjects. Subjects are
// built with >= 10 words so the §4.1 clustering (which ignores shorter
// subjects) can see them.
var subjectWords = []string{
	"account", "amazing", "best", "bonus", "cheap", "claim", "click", "customer",
	"deal", "delivery", "discount", "exclusive", "fast", "free", "friend",
	"guaranteed", "health", "important", "incredible", "instant", "invoice",
	"limited", "lowest", "luxury", "market", "medication", "meeting", "member",
	"money", "notice", "offer", "online", "order", "original", "payment",
	"pharmacy", "price", "prize", "product", "quality", "receipt", "replica",
	"reward", "sale", "satisfaction", "save", "secret", "secure", "shipping",
	"special", "statement", "stock", "subscription", "summer", "support",
	"today", "trusted", "update", "urgent", "watches", "weekly", "winner",
}

// makeSubject builds a deterministic >=10-word subject from the rng.
func makeSubject(rng *rand.Rand, prefix string) string {
	n := 10 + rng.Intn(4)
	words := make([]string, 0, n+1)
	if prefix != "" {
		words = append(words, prefix)
	}
	for i := 0; i < n; i++ {
		words = append(words, subjectWords[rng.Intn(len(subjectWords))])
	}
	return strings.Join(words, " ")
}

// SpoofMix is the distribution of envelope-sender categories used by
// botnet spam campaigns. These proportions drive the Figure 4(a)
// challenge delivery statuses: spoofed non-existent mailboxes bounce,
// innocent bystanders receive misdirected challenges, unreachable
// domains make challenges expire, and traps feed the blocklists.
type SpoofMix struct {
	NoUser      float64 // non-existent mailbox at a real domain
	Innocent    float64 // existing bystander mailbox
	Robot       float64 // existing automated mailbox (never reacts)
	Trap        float64 // spamtrap address
	Unreachable float64 // mailbox at an unreachable mail server
}

// DefaultSpoofMix is calibrated to land the study's challenge status
// distribution (49% delivered; 71.7% of the rest bounced-no-user). Trap
// is zero here because trap exposure is campaign-driven: only campaigns
// whose harvested address list was poisoned include trap addresses (see
// Campaign.TrapShare) — this is what decorrelates a server's blacklisting
// risk from its size, the §5.1 finding.
func DefaultSpoofMix() SpoofMix {
	return SpoofMix{NoUser: 0.50, Innocent: 0.26, Robot: 0.06, Trap: 0, Unreachable: 0.18}
}

// Campaign is one spam or marketing campaign: a fixed subject reused
// across all its messages (the §4.1 clustering key) plus a sender model.
type Campaign struct {
	ID      int
	Subject string
	// Newsletter marks high-sender-similarity campaigns (real marketing
	// programs with a handful of similar sender addresses and operators
	// who may solve challenges). Non-newsletter campaigns are botnet
	// spam with per-message spoofed senders.
	Newsletter bool
	// Senders is the newsletter sender pool (similar local parts).
	Senders []mail.Address
	// Diligence is the newsletter operator's challenge-solving
	// probability (the paper saw clusters from ~0 up to 97% solved).
	Diligence float64
	// VirusProb is the probability a message carries an AV signature.
	VirusProb float64
	// MsgSize is the byte size of campaign messages.
	MsgSize int
	// StartDay/EndDay bound the campaign's activity window (inclusive,
	// 0-based simulation days).
	StartDay, EndDay int
	// Weight is the relative share of spam volume this campaign gets
	// while active.
	Weight float64
	// TrapShare is the fraction of this campaign's spoofed senders that
	// are spamtrap addresses (non-zero only for campaigns built from a
	// poisoned harvested list).
	TrapShare float64
	// SpoofPool is the finite set of spoofed senders a botnet campaign
	// rotates through. Finite pools mean repeat senders, which the CR
	// engine deduplicates — the reason a spam cluster of N messages
	// yields far fewer than N challenges.
	SpoofPool []mail.Address
}

// ActiveOn reports whether the campaign sends on the given day.
func (c *Campaign) ActiveOn(day int) bool {
	return day >= c.StartDay && day <= c.EndDay
}
