package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mail"
)

// concentratedConfig returns a tiny fleet whose mix is 100% one class,
// so each generator path can be verified in isolation.
func concentratedConfig(seed int64, set func(*Mix)) Config {
	cfg := smallConfig(seed)
	for i := range cfg.Profiles {
		m := Mix{}
		set(&m)
		cfg.Profiles[i].Mix = m
	}
	return cfg
}

// runConcentrated builds, runs one day, and returns the first company's
// engine metrics plus the fleet.
func runConcentrated(t *testing.T, seed int64, set func(*Mix)) (core.Metrics, *Fleet) {
	t.Helper()
	mail.ResetIDCounter()
	f := NewFleet(concentratedConfig(seed, set))
	f.Run(1)
	return f.Companies[0].Engine.Metrics(), f
}

func TestClassMalformedAllDropped(t *testing.T) {
	m, _ := runConcentrated(t, 101, func(mix *Mix) { mix.Malformed = 1 })
	if m.MTADropped[core.Malformed] != m.MTAIncoming {
		t.Fatalf("malformed drops %d of %d", m.MTADropped[core.Malformed], m.MTAIncoming)
	}
}

func TestClassUnresolvableAllDropped(t *testing.T) {
	m, _ := runConcentrated(t, 102, func(mix *Mix) { mix.UnresolvableSender = 1 })
	if m.MTADropped[core.Unresolvable] != m.MTAIncoming {
		t.Fatalf("unresolvable drops %d of %d", m.MTADropped[core.Unresolvable], m.MTAIncoming)
	}
}

func TestClassUnknownRecipientAllDropped(t *testing.T) {
	m, _ := runConcentrated(t, 103, func(mix *Mix) { mix.UnknownRecipient = 1 })
	if m.MTADropped[core.UnknownRecipient] != m.MTAIncoming {
		t.Fatalf("unknown-rcpt drops %d of %d", m.MTADropped[core.UnknownRecipient], m.MTAIncoming)
	}
}

func TestClassRejectedSenderAllDropped(t *testing.T) {
	m, _ := runConcentrated(t, 104, func(mix *Mix) { mix.RejectedSender = 1 })
	if m.MTADropped[core.SenderRejected] != m.MTAIncoming {
		t.Fatalf("rejected-sender drops %d of %d", m.MTADropped[core.SenderRejected], m.MTAIncoming)
	}
}

func TestClassWhiteAllDeliveredInstantly(t *testing.T) {
	m, _ := runConcentrated(t, 105, func(mix *Mix) { mix.WhiteKnown = 1 })
	if m.SpoolWhite != m.MTAIncoming {
		t.Fatalf("white %d of %d", m.SpoolWhite, m.MTAIncoming)
	}
	if m.Delivered[core.ViaWhitelist] != m.MTAIncoming {
		t.Fatalf("instant deliveries %d of %d", m.Delivered[core.ViaWhitelist], m.MTAIncoming)
	}
	if m.ChallengesSent != 0 {
		t.Fatal("whitelisted traffic was challenged")
	}
}

func TestClassBlackAllDropped(t *testing.T) {
	m, _ := runConcentrated(t, 106, func(mix *Mix) { mix.BlackKnown = 1 })
	if m.SpoolBlack != m.MTAIncoming {
		t.Fatalf("black %d of %d", m.SpoolBlack, m.MTAIncoming)
	}
}

func TestClassNullSenderQuarantinedNeverChallenged(t *testing.T) {
	m, _ := runConcentrated(t, 107, func(mix *Mix) { mix.NullSender = 1 })
	if m.ChallengesSent != 0 {
		t.Fatalf("bounces were challenged: %d", m.ChallengesSent)
	}
	if m.QuarantineOnly == 0 {
		t.Fatal("no null-sender quarantine")
	}
}

func TestClassRelayAttemptClosedAllRefused(t *testing.T) {
	mail.ResetIDCounter()
	cfg := concentratedConfig(108, func(mix *Mix) { mix.RelayAttempt = 1 })
	// Force every company closed.
	for i := range cfg.Profiles {
		cfg.Profiles[i].OpenRelay = false
	}
	f := NewFleet(cfg)
	f.Run(1)
	m := f.Companies[0].Engine.Metrics()
	if m.MTADropped[core.NoRelay] != m.MTAIncoming {
		t.Fatalf("no-relay drops %d of %d", m.MTADropped[core.NoRelay], m.MTAIncoming)
	}
}

func TestClassRelayAttemptOpenRelayAccepted(t *testing.T) {
	mail.ResetIDCounter()
	cfg := concentratedConfig(109, func(mix *Mix) { mix.RelayAttempt = 1 })
	for i := range cfg.Profiles {
		cfg.Profiles[i].OpenRelay = true
	}
	f := NewFleet(cfg)
	f.Run(1)
	m := f.Companies[0].Engine.Metrics()
	if m.TotalMTADropped() != 0 {
		t.Fatalf("open relay dropped %d relayed messages", m.TotalMTADropped())
	}
	if m.SpoolGray != m.MTAIncoming {
		t.Fatalf("relayed mail not gray: %d of %d", m.SpoolGray, m.MTAIncoming)
	}
}

func TestClassSpamFlowsThroughFilters(t *testing.T) {
	m, f := runConcentrated(t, 110, func(mix *Mix) {})
	// Empty mix = 100% residual spam.
	if m.SpoolGray != m.MTAIncoming {
		t.Fatalf("spam gray %d of %d", m.SpoolGray, m.MTAIncoming)
	}
	// Filters drop a majority of botnet spam; the rest is challenged or
	// dedup-held.
	if m.TotalFilterDropped() == 0 || m.ChallengesSent == 0 {
		t.Fatalf("spam pipeline inert: %+v", m)
	}
	if m.TotalFilterDropped()+m.ChallengesSent+m.ChallengeSuppressed != m.SpoolGray {
		t.Fatalf("gray accounting broken: %+v", m)
	}
	_ = f
}

func TestClassNewsletterChallenged(t *testing.T) {
	m, f := runConcentrated(t, 111, func(mix *Mix) { mix.Newsletter = 1 })
	// Newsletters start gray; once an operator solves a challenge the
	// sender is whitelisted, so later issues of the same newsletter are
	// white. Gray + white must cover everything.
	if m.SpoolGray+m.SpoolWhite != m.MTAIncoming {
		t.Fatalf("newsletters gray=%d white=%d of %d", m.SpoolGray, m.SpoolWhite, m.MTAIncoming)
	}
	// Newsletter senders have clean infrastructure: no filter drops;
	// challenges deduplicate per (user, sender).
	if m.TotalFilterDropped() != 0 {
		t.Fatalf("newsletters filter-dropped: %+v", m.FilterDropped)
	}
	if m.ChallengesSent == 0 {
		t.Fatal("no newsletter challenges")
	}
	// Challenges go to the small operator pool: far fewer than messages.
	if m.ChallengesSent+m.ChallengeSuppressed != m.SpoolGray {
		t.Fatalf("newsletter accounting: %+v", m)
	}
	_ = f
}

func TestClassLegitNewMostlySolved(t *testing.T) {
	mail.ResetIDCounter()
	f := NewFleet(concentratedConfig(112, func(mix *Mix) { mix.LegitNew = 1 }))
	f.Run(2) // give solves a day to land
	m := f.Companies[0].Engine.Metrics()
	if m.ChallengesSent == 0 {
		t.Fatal("no challenges for first-contact mail")
	}
	// Real correspondents solve most challenges.
	if m.Delivered[core.ViaChallenge] == 0 {
		t.Fatal("no challenge-solved deliveries")
	}
	solveRate := float64(m.Delivered[core.ViaChallenge]) / float64(m.ChallengesSent)
	if solveRate < 0.3 {
		t.Fatalf("legit solve-driven delivery rate = %v, want high", solveRate)
	}
}
