package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/digest"
	"repro/internal/dnscache"
	"repro/internal/dnssim"
	"repro/internal/faults"
	"repro/internal/filters"
	"repro/internal/greylist"
	"repro/internal/mail"
	"repro/internal/maillog"
	"repro/internal/overload"
	"repro/internal/rbl"
	"repro/internal/reputation"
	"repro/internal/resilience"
	"repro/internal/simnet"
	"repro/internal/spf"
	"repro/internal/trace"
	"repro/internal/whitelist"
)

// Config parameterises the synthetic world.
type Config struct {
	// Seed drives all randomness; equal seeds give identical runs.
	Seed int64
	// Profiles are the companies to instantiate.
	Profiles []CompanyProfile
	// ScaleVolume multiplies every company's DailyVolume (use <1 for
	// fast experiment runs; the proportions are volume-invariant).
	ScaleVolume float64
	// Workers is the worker-pool size for Run: companies advance in
	// parallel on a work-stealing lane scheduler, rendezvousing at
	// hourly epoch edges where cross-lane barriers fire only for epochs
	// with staged effects (see ledger.go). 0 means GOMAXPROCS; 1 runs
	// the same epoch algorithm serially. Results are identical
	// for every value — each company owns its clock, scheduler and RNG
	// streams, and cross-company effects apply only at barriers in
	// company-name order. A FaultPlan forces 1 (the injector draws from
	// one shared RNG whose order must stay reproducible).
	Workers int

	// World population.
	LegitDomains        int // partner domains hosting real correspondents
	LegitPerDomain      int
	InnocentDomains     int // bystander domains spam spoofs
	InnocentPerDomain   int
	RobotPerDomain      int
	UnreachableDomains  int     // domains whose mail servers never answer
	UnresolvableDomains int     // spoofed domains without DNS at all
	TrapCount           int     // spamtrap addresses scattered on innocent domains
	ConsultRBLFraction  float64 // fraction of remote domains screening by RBL

	// SPF publication rates (2010-era adoption was partial, which is why
	// the paper's Figure 12 what-if removes only a slice of challenges).
	LegitSPFRate    float64
	InnocentSPFRate float64

	// Campaigns.
	NewsletterCampaigns int
	SpamCampaigns       int
	SpamVirusProb       float64
	SpoofMix            SpoofMix

	// Botnet (spam delivery infrastructure).
	BotnetSize   int
	BotnetNoPTR  float64 // fraction without reverse DNS
	BotnetListed float64 // fraction (of PTR-having) statically on the filter RBL

	// UseSPFFilter adds the §5.2 SPF check to every engine's filter
	// chain (the studied product did NOT have it; the paper evaluated it
	// offline — this flag turns on the online configuration for the
	// ablation).
	UseSPFFilter bool
	// ChallengeCapPerHour, when >0, applies the per-engine hourly
	// challenge rate cap (the §6 attack mitigation).
	ChallengeCapPerHour int
	// UseReputation gives every engine a sender-reputation store: a
	// hardened fail-open reputation filter heads the chain (suspect
	// senders dropped before the probe filters run) and trusted senders
	// skip the probe filters entirely via the engine fast path. Off by
	// default so the calibrated baseline stays untouched; the reputation
	// ablation flips it.
	UseReputation bool
	// UseGreylisting puts an SMTP greylist in front of every engine:
	// first-contact tuples are temp-rejected; real MTAs retry (the
	// message arrives ~delay later), botnet cannons mostly do not. An
	// ablation for the §5.2 "which other techniques" question.
	UseGreylisting bool
	// SpamRetryProb is the probability a botnet delivery retries after a
	// greylist 451 (fire-and-forget cannons rarely do).
	SpamRetryProb float64

	// User behaviour.
	DigestAuthorizeProb float64 // authorize a wanted pending message
	DigestDeleteProb    float64 // delete an unwanted pending message

	// EmitDSNs routes challenge bounces through real RFC 3464 DSN
	// messages delivered back to each company's MTA-IN, so the engines
	// learn challenge fates from their own DSN feedback loop instead of
	// the direct transport callback (see simnet.Config.EmitDSNs).
	EmitDSNs bool

	// FaultPlan, when non-nil, activates the internal/faults injection
	// layer across the simulated infrastructure: the DNS resolver, every
	// blocklist provider, and the scanner backends all consult one seeded
	// injector, so a run under faults is exactly reproducible.
	FaultPlan *faults.Plan

	// Overload, when non-nil, puts an admission controller in front of
	// every engine: messages pass overload.Controller.Submit before
	// Receive, shed mail is tempfailed (451) and retried per the sender's
	// MTA model — real senders always retry, bots with SpamRetryProb —
	// and the engine sheds probe-filter work while the admission queue is
	// pressured. Name and Clock are overridden per company.
	Overload *overload.Config
	// SurgeBursts schedules windows of extra botnet spam on top of the
	// profile volumes (Intensity 10 ≈ the paper-scale 10× campaign
	// burst). Bursts are injected per lane, so runs stay worker-count
	// invariant.
	SurgeBursts []SurgeBurst
	// SurgePlan, when non-nil, drives per-message engine service latency
	// through the "surge" fault target. Unlike FaultPlan it does NOT
	// force serial execution: every lane derives its own injector from
	// (Seed, company), so decisions are lane-local and deterministic for
	// any worker count.
	SurgePlan *faults.Plan

	// Measurement.
	CheckerPeriod time.Duration // §5.1 blacklist polling period
	// LogSink, when non-nil, receives every engine's decision events
	// (the maillog stream the paper's measurement pipeline parsed).
	// Called from the simulation goroutine; must be fast.
	LogSink func(maillog.Event)
	// TraceSink, when non-nil, receives every generated message as a
	// trace.Record so workloads can be frozen to disk and replayed
	// against differently-configured engines (internal/trace).
	TraceSink func(trace.Record)
}

// DefaultConfig returns a Config with n companies and the stock world,
// calibrated per DESIGN.md §4.
func DefaultConfig(seed int64, n int) Config {
	rng := rand.New(rand.NewSource(seed))
	return Config{
		Seed:                seed,
		Profiles:            DefaultProfiles(n, rng),
		ScaleVolume:         1,
		LegitDomains:        14,
		LegitPerDomain:      120,
		InnocentDomains:     30,
		InnocentPerDomain:   40,
		RobotPerDomain:      4,
		UnreachableDomains:  12,
		UnresolvableDomains: 12,
		TrapCount:           60,
		ConsultRBLFraction:  0.5,
		LegitSPFRate:        0.6,
		InnocentSPFRate:     0.08,
		NewsletterCampaigns: 8,
		SpamCampaigns:       48,
		SpamVirusProb:       0.02,
		SpoofMix:            DefaultSpoofMix(),
		BotnetSize:          400,
		BotnetNoPTR:         0.30,
		BotnetListed:        0.66,
		DigestAuthorizeProb: 0.5,
		DigestDeleteProb:    0.7,
		SpamRetryProb:       0.06,
		CheckerPeriod:       4 * time.Hour,
	}
}

// botIP is one spam-sending host.
type botIP struct {
	ip     string
	hasPTR bool
	listed bool
}

// GrayEntry is the per-challenged-message context the offline SPF
// experiment (Figure 12) joins against challenge records.
type GrayEntry struct {
	MsgID    string
	From     mail.Address
	ClientIP string
	Subject  string
}

// Fleet is the fully-assembled world: simulated clock, DNS, blocklists,
// remote servers, companies, campaigns and the day-loop driver.
type Fleet struct {
	Cfg       Config
	Clk       *clock.Sim
	Sched     *clock.Scheduler
	DNS       *dnssim.Server
	Providers []*rbl.Provider
	Traps     *rbl.TrapRegistry
	Net       *simnet.Network
	Checker   *rbl.Checker
	Digests   *digest.Book
	Companies []*simnet.Company
	Start     time.Time
	// Injector is the active fault source (nil without Config.FaultPlan).
	Injector *faults.Set
	// DNSCache fronts DNS for every engine, filter and the workload
	// generator (nil under a FaultPlan: injected resolver faults must
	// reach every consumer un-cached).
	DNSCache *dnscache.Cache
	// RBLCache memoizes the filter blocklist's Query answers (nil under
	// a FaultPlan, for the same reason).
	RBLCache *dnscache.RBLCache

	lanes   []*companyLane  // company-name-sorted execution lanes
	resolve dnssim.Resolver // DNSCache when enabled, else DNS
	outIPs  []string        // cached allOutIPs result

	rng        *rand.Rand
	profiles   map[string]CompanyProfile
	users      map[string][]mail.Address       // company -> protected users
	seededWL   map[mail.Address][]mail.Address // canonical user -> seeded contacts
	seededBL   map[mail.Address][]mail.Address // canonical user -> blacklisted senders
	rejectedBy map[string]mail.Address         // company -> its rejected sender
	activity   map[mail.Address]float64        // canonical user -> outbound-activity multiplier
	greylists  map[string]*greylist.Store      // company -> greylist (when enabled)
	reputation map[string]*reputation.Store    // company -> reputation store (when enabled)

	legitPool     []mail.Address
	innocents     []mail.Address
	robots        []mail.Address
	trapAddrs     []mail.Address
	unreachable   []string // domains
	unresolvable  []string // domains
	foreignDomain string
	botnet        []botIP
	spamCamps     []*Campaign
	newsCamps     []*Campaign

	// mu guards the merged shared state below. Lanes read it mid-epoch
	// (laneTruth fallback) under the read lock; the only writers are the
	// barrier merge and the day counter, which run with all lanes parked.
	mu          sync.RWMutex
	truth       map[string]Class
	grayLog     map[string]GrayEntry
	classCounts map[Class]int64
	day         int

	// ledger is the sparse-barrier / steal-scheduler bookkeeping
	// (ledger.go): epoch, fired/skipped-barrier, steal and trap-hit
	// counters plus the shared-clock watermark.
	ledger syncLedger
}

// FleetStart is the simulation epoch, matching the study's first
// monitored day (July 2010).
var FleetStart = time.Date(2010, 7, 1, 0, 0, 0, 0, time.UTC)

// NewFleet builds the world. The heavy lifting — DNS zones, remote
// servers, mailbox populations, whitelist seeding — happens here; no
// traffic flows until Run.
func NewFleet(cfg Config) *Fleet {
	if cfg.ScaleVolume <= 0 {
		cfg.ScaleVolume = 1
	}
	f := &Fleet{
		Cfg:         cfg,
		Clk:         clock.NewSim(FleetStart),
		Start:       FleetStart,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		profiles:    make(map[string]CompanyProfile),
		users:       make(map[string][]mail.Address),
		seededWL:    make(map[mail.Address][]mail.Address),
		seededBL:    make(map[mail.Address][]mail.Address),
		rejectedBy:  make(map[string]mail.Address),
		activity:    make(map[mail.Address]float64),
		greylists:   make(map[string]*greylist.Store),
		reputation:  make(map[string]*reputation.Store),
		truth:       make(map[string]Class),
		grayLog:     make(map[string]GrayEntry),
		classCounts: make(map[Class]int64),
	}
	f.Sched = clock.NewScheduler(f.Clk)
	f.DNS = dnssim.NewServer()
	f.Providers = rbl.StandardProviders(f.Clk)
	f.Traps = rbl.NewTrapRegistry(f.Providers...)
	f.Checker = rbl.NewChecker(f.Providers...)
	f.Digests = digest.NewBook()
	if cfg.FaultPlan != nil {
		f.Injector = faults.New(cfg.FaultPlan, cfg.Seed+77, f.Clk)
		f.DNS.SetInjector(f.Injector)
		for _, p := range f.Providers {
			p.SetInjector(f.Injector)
		}
	}
	netCfg := simnet.Config{Seed: cfg.Seed + 1, EmitDSNs: cfg.EmitDSNs}
	if f.Injector != nil {
		netCfg.Injector = f.Injector
	}
	f.Net = simnet.New(f.Clk, f.Sched, f.DNS, f.Providers, f.Traps, netCfg)

	// The resolver-cache path: every engine, probe filter, SPF checker
	// and the workload generator resolve through one TTL cache with
	// negative caching and single-flight collapse. Under a fault plan the
	// caches stay off — an injected fault must reach every consumer, and
	// the injector's per-decision RNG draws must keep their exact order.
	f.resolve = f.DNS
	if f.Injector == nil {
		f.DNSCache = dnscache.New(f.DNS, dnscache.Options{Clock: f.Clk, Gen: f.DNS.Gen})
		f.resolve = f.DNSCache
		// Explicit-invalidation mode: entries live until a fired barrier
		// invalidates exactly the IPs whose listing state changed (sweep
		// delists + flushed trap hits, see fireBarrier). Negative entries
		// for the never-listed majority therefore persist run-long.
		f.RBLCache = dnscache.NewRBLExplicit(f.filterProvider(), f.Clk)
		f.Net.SetResolvable(f.DNSCache.Resolvable)
	}

	f.buildWorld()
	f.buildCampaigns()
	f.buildCompanies()
	return f
}

// Salts for deriveSeed: each (seed, salt, ...) tuple yields an
// independent deterministic RNG stream.
const (
	saltLaneRNG int64 = iota + 1
	saltNetLane
	saltCampaignCovers
	saltCampaignTargets
	saltSurge
	saltSteal
)

// deriveSeed hashes a base seed and salts into the seed of an
// independent RNG stream (splitmix64 finalizer). Lanes, the per-company
// network personas, and campaign memos each draw from streams derived
// from (seed, company) so their randomness is identical regardless of
// worker count or lane interleaving.
func deriveSeed(base int64, salts ...int64) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15
	for _, s := range salts {
		z += uint64(s) + 0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
	}
	return int64(z &^ (1 << 63))
}

// filterProvider returns the blocklist the engines' RBL filter consults
// (the study's product used SpamHaus).
func (f *Fleet) filterProvider() *rbl.Provider {
	for _, p := range f.Providers {
		if p.Name() == "spamhaus" {
			return p
		}
	}
	return f.Providers[0]
}

// assignScreen gives a remote server a blocklist subscription with
// probability ConsultRBLFraction, weighted toward the mainstream lists.
func (f *Fleet) assignScreen(rs *simnet.RemoteServer) {
	if f.rng.Float64() >= f.Cfg.ConsultRBLFraction {
		return
	}
	// Mainstream lists are consulted far more often than niche ones.
	weights := []int{3, 3, 6, 1, 1, 2, 4, 1} // parallel to StandardProviders order
	total := 0
	for _, w := range weights {
		total += w
	}
	u := f.rng.Intn(total)
	for i, w := range weights {
		if u < w {
			rs.Screen = f.Providers[i]
			return
		}
		u -= w
	}
}

func (f *Fleet) buildWorld() {
	cfg := f.Cfg

	// Partner domains with real human correspondents.
	for d := 0; d < cfg.LegitDomains; d++ {
		domain := fmt.Sprintf("partner%02d.example", d)
		ip := fmt.Sprintf("192.0.%d.%d", 2+d/200, 10+d%200)
		rs := simnet.NewRemoteServer(domain, ip)
		f.assignScreen(rs)
		for m := 0; m < cfg.LegitPerDomain; m++ {
			local := fmt.Sprintf("person%03d", m)
			rs.AddMailbox(local, simnet.PersonaLegit)
			f.legitPool = append(f.legitPool, mail.Address{Local: local, Domain: domain})
		}
		f.Net.AddRemote(rs)
		if f.rng.Float64() < cfg.LegitSPFRate {
			f.DNS.AddTXT(domain, fmt.Sprintf("v=spf1 ip4:%s -all", ip))
		}
	}

	// Bystander domains: innocent mailboxes (spoof victims), robots, and
	// scattered spamtraps.
	for d := 0; d < cfg.InnocentDomains; d++ {
		domain := fmt.Sprintf("bystander%02d.example", d)
		ip := fmt.Sprintf("203.0.%d.%d", 113+d/200, 10+d%200)
		rs := simnet.NewRemoteServer(domain, ip)
		f.assignScreen(rs)
		for m := 0; m < cfg.InnocentPerDomain; m++ {
			local := fmt.Sprintf("user%03d", m)
			rs.AddMailbox(local, simnet.PersonaInnocent)
			f.innocents = append(f.innocents, mail.Address{Local: local, Domain: domain})
		}
		for m := 0; m < cfg.RobotPerDomain; m++ {
			local := fmt.Sprintf("noreply%d", m)
			rs.AddMailbox(local, simnet.PersonaRobot)
			f.robots = append(f.robots, mail.Address{Local: local, Domain: domain})
		}
		f.Net.AddRemote(rs)
		if f.rng.Float64() < cfg.InnocentSPFRate {
			f.DNS.AddTXT(domain, fmt.Sprintf("v=spf1 ip4:%s -all", ip))
		}
	}

	// Spamtraps live on the bystander domains (they must look ordinary).
	for t := 0; t < cfg.TrapCount; t++ {
		domain := fmt.Sprintf("bystander%02d.example", t%cfg.InnocentDomains)
		addr := mail.Address{Local: fmt.Sprintf("trap%03d", t), Domain: domain}
		f.Traps.AddTrap(addr)
		f.trapAddrs = append(f.trapAddrs, addr)
	}

	// Domains whose mail servers never answer: challenges there expire.
	for d := 0; d < cfg.UnreachableDomains; d++ {
		domain := fmt.Sprintf("deadmx%02d.example", d)
		rs := simnet.NewRemoteServer(domain, fmt.Sprintf("198.18.0.%d", 10+d))
		rs.Unreachable = true
		f.Net.AddRemote(rs)
		f.unreachable = append(f.unreachable, domain)
	}

	// Spoofed domains with no DNS presence at all: mail claiming to come
	// from them is dropped at the MTA-IN ("unable to resolve").
	for d := 0; d < cfg.UnresolvableDomains; d++ {
		f.unresolvable = append(f.unresolvable, fmt.Sprintf("ghost%02d.invalid", d))
	}

	// A reachable foreign domain for relay probes against closed relays.
	f.foreignDomain = "elsewhere.example"
	rs := simnet.NewRemoteServer(f.foreignDomain, "198.51.100.200")
	rs.AddMailbox("info", simnet.PersonaRobot)
	f.Net.AddRemote(rs)

	// The botnet: spam-sending hosts with partial reverse DNS and
	// partial static blocklist coverage.
	spamhaus := f.filterProvider()
	for b := 0; b < cfg.BotnetSize; b++ {
		ip := fmt.Sprintf("100.%d.%d.%d", 64+b/65025, (b/255)%255, 1+b%255)
		bot := botIP{ip: ip}
		if f.rng.Float64() >= cfg.BotnetNoPTR {
			bot.hasPTR = true
			f.DNS.AddPTR(ip, fmt.Sprintf("dsl-%d.access.example", b))
			if f.rng.Float64() < cfg.BotnetListed {
				bot.listed = true
				spamhaus.AddStatic(ip)
			}
		}
		f.botnet = append(f.botnet, bot)
	}
}

func (f *Fleet) buildCampaigns() {
	cfg := f.Cfg
	// Newsletter/marketing campaigns: few similar senders on their own
	// domain, operator diligence spanning the paper's observed range.
	for k := 0; k < cfg.NewsletterCampaigns; k++ {
		domain := fmt.Sprintf("news%02d.example", k)
		ip := fmt.Sprintf("198.51.%d.%d", 100+k/200, 10+k%200)
		rs := simnet.NewRemoteServer(domain, ip)
		// Operator diligence skews low (most marketing programs ignore
		// challenges) with a tail reaching the paper's 97%-solved clusters.
		u := f.rng.Float64()
		diligence := 0.02 + 0.93*u*u*u
		c := &Campaign{
			ID:         k,
			Subject:    makeSubject(f.rng, fmt.Sprintf("newsletter%02d", k)),
			Newsletter: true,
			Diligence:  diligence,
			MsgSize:    9000 + f.rng.Intn(40000),
			StartDay:   0,
			EndDay:     1 << 30,
			Weight:     0.3 + f.rng.Float64(),
		}
		nSenders := 2 + f.rng.Intn(3)
		for s := 0; s < nSenders; s++ {
			local := fmt.Sprintf("dept-x.%c", 'p'+s)
			b := simnet.DefaultBehavior(simnet.PersonaNewsletter)
			b.VisitProb = min(1, diligence+0.05)
			b.SolveProbGivenVisit = diligence / b.VisitProb
			rs.AddMailboxBehavior(local, simnet.PersonaNewsletter, b)
			c.Senders = append(c.Senders, mail.Address{Local: local, Domain: domain})
		}
		f.Net.AddRemote(rs)
		f.DNS.AddTXT(domain, fmt.Sprintf("v=spf1 ip4:%s -all", ip))
		f.newsCamps = append(f.newsCamps, c)
	}

	// Botnet spam campaigns: a quarter run continuously (there is always
	// background spam), the rest are bursty windows. A minority use a
	// poisoned (trap-containing) harvested list; the first two poisoned
	// ones are continuous so every monitoring window observes the §5.1
	// blacklisting channel.
	for k := 0; k < cfg.SpamCampaigns; k++ {
		start := f.rng.Intn(160)
		end := start + 3 + f.rng.Intn(30)
		if k < cfg.SpamCampaigns/4 {
			start, end = 0, 1<<30 // background campaign
		}
		c := &Campaign{
			ID:        1000 + k,
			Subject:   makeSubject(f.rng, ""),
			VirusProb: cfg.SpamVirusProb,
			MsgSize:   3500 + f.rng.Intn(16000),
			StartDay:  start,
			EndDay:    end,
			Weight:    0.2 + f.rng.Float64()*1.8,
		}
		if k < 2 || f.rng.Float64() < 0.10 {
			c.TrapShare = 0.02 + f.rng.Float64()*0.03
		}
		poolSize := 10 + f.rng.Intn(16)
		for s := 0; s < poolSize; s++ {
			c.SpoofPool = append(c.SpoofPool, f.drawSpoof(c.TrapShare))
		}
		f.spamCamps = append(f.spamCamps, c)
	}
}

// drawSpoof draws one spoofed sender address: a trap with probability
// trapShare, otherwise per the configured spoof mix.
func (f *Fleet) drawSpoof(trapShare float64) mail.Address {
	if trapShare > 0 && f.rng.Float64() < trapShare {
		return f.trapAddrs[f.rng.Intn(len(f.trapAddrs))]
	}
	mix := f.Cfg.SpoofMix
	total := mix.NoUser + mix.Innocent + mix.Robot + mix.Unreachable
	u := f.rng.Float64() * total
	switch {
	case u < mix.NoUser:
		dom := f.innocents[f.rng.Intn(len(f.innocents))].Domain
		return mail.Address{Local: fmt.Sprintf("fake%d", f.rng.Intn(1000000)), Domain: dom}
	case u < mix.NoUser+mix.Innocent:
		return f.innocents[f.rng.Intn(len(f.innocents))]
	case u < mix.NoUser+mix.Innocent+mix.Robot:
		return f.robots[f.rng.Intn(len(f.robots))]
	default:
		dom := f.unreachable[f.rng.Intn(len(f.unreachable))]
		return mail.Address{Local: fmt.Sprintf("x%d", f.rng.Intn(100000)), Domain: dom}
	}
}

// companyLane is the per-company execution context: its own virtual
// clock, scheduler, RNG stream, message-ID source, sink buffers and
// ground-truth staging maps. A lane is advanced by exactly one worker
// per epoch, so everything here is single-threaded; lane-local state is
// merged into the shared maps behind f.mu only at epoch barriers.
type companyLane struct {
	idx     int // profile index: the stable salt for derived RNG streams
	comp    *simnet.Company
	profile CompanyProfile
	clk     *clock.Sim
	sched   *clock.Scheduler
	rng     *rand.Rand
	ids     *mail.IDSource

	// Sink buffers: maillog/trace events are buffered per lane and
	// flushed at the epoch barrier in lane (company-name) order, so the
	// streams the measurement pipeline sees are worker-count-invariant.
	logBuf   []maillog.Event
	traceBuf []trace.Record

	// Ground-truth staging: written lock-free on the lane goroutine,
	// merged into Fleet.truth/grayLog/classCounts behind f.mu at each
	// epoch barrier (mergeLaneState). The injection hot path therefore
	// never touches the shared mutex.
	truth       map[string]Class
	grayLog     map[string]GrayEntry
	classCounts [ClassSpam + 1]int64

	// covering is the precomputed subset of spam campaigns whose
	// harvested lists include this company, in f.spamCamps order. It is
	// drawn from the same (seed, campaign, company) streams the lazy
	// memo used, so membership is identical — but the per-message pick
	// loop walks a lane-local slice instead of taking a per-campaign
	// mutex for every campaign.
	covering []*Campaign
	// targets memoises this company's harvested recipient list per
	// campaign ID. Deterministic per (seed, campaign, company), so each
	// lane computes its own copy without cross-lane sharing.
	targets map[int][]mail.Address

	active  []*Campaign // pickSpamCampaign scratch, reused per call
	names   interner    // hot-string interner ("mail.<domain>" …)
	scratch []byte      // byte scratch for name minting and intern probes

	// Overload admission (nil unless Config.Overload): the controller
	// runs on the lane clock and its events buffer into logBuf like the
	// engine's, so the shed stream is worker-count invariant.
	ctl *overload.Controller
	// surge is the lane's private service-latency injector (nil unless
	// Config.SurgePlan), seeded from (Seed, saltSurge, company).
	surge      *faults.Set
	surgeStats laneSurgeStats
}

func (f *Fleet) buildCompanies() {
	for i, p := range f.Cfg.Profiles {
		f.profiles[p.Name] = p
		challengeIP := fmt.Sprintf("198.51.100.%d", 1+i*2)
		mailIP := challengeIP
		if p.SplitMTAOut {
			mailIP = fmt.Sprintf("198.51.100.%d", 2+i*2)
		}

		// The lane: every time-dependent component below (breakers,
		// whitelist TTLs, greylist windows, reputation decay, the engine
		// itself) runs on the lane clock, which only this company's
		// worker advances. The shared f.Clk moves at epoch barriers.
		ln := &companyLane{
			idx:     i,
			profile: p,
			clk:     clock.NewSim(FleetStart),
			rng:     rand.New(rand.NewSource(deriveSeed(f.Cfg.Seed, saltLaneRNG, int64(i)))),
			ids:     mail.NewIDSource(p.Name),
			truth:   make(map[string]Class),
			grayLog: make(map[string]GrayEntry),
			targets: make(map[int][]mail.Address),
			names:   newInterner(),
		}
		ln.sched = clock.NewScheduler(ln.clk)

		av := filters.NewAntivirus()
		if f.Injector != nil {
			av.SetInjector(f.Injector)
		}
		// Every auxiliary filter runs behind a breaker + retrier with an
		// explicit degradation policy: the scan fails closed (unscanned
		// mail is held), the advisory lookups fail open (an outage must
		// not silently drop real mail). Without a fault plan the probes
		// never fail, so the hardened chain behaves identically.
		seed := f.Cfg.Seed + int64(i)*7919
		harden := func(pr filters.Prober, mode filters.DegradeMode, n int64) filters.Filter {
			return filters.Harden(pr, mode, filters.HardenOpts{
				Breaker: resilience.NewBreaker(p.Name+"/"+pr.Name(), resilience.DefaultBreakerConfig(), ln.clk),
				Seed:    seed + n,
			})
		}
		var rblBackend filters.RBLBackend = f.filterProvider()
		if f.RBLCache != nil {
			rblBackend = f.RBLCache
		}
		chainFilters := []filters.Filter{
			harden(av, filters.FailClosed, 1),
			harden(filters.NewReverseDNS(f.resolve), filters.FailOpen, 2),
			harden(filters.NewRBL(rblBackend), filters.FailOpen, 3),
		}
		if f.Cfg.UseSPFFilter {
			chainFilters = append(chainFilters, harden(filters.NewSPF(spf.New(f.resolve)), filters.FailOpen, 4))
		}
		var rep *reputation.Store
		if f.Cfg.UseReputation {
			repCfg := reputation.DefaultConfig()
			if f.Injector != nil {
				repCfg.Injector = f.Injector
			}
			rep = reputation.NewStore(repCfg, ln.clk)
			f.reputation[p.Name] = rep
			// The reputation check heads the chain so suspect senders are
			// dropped before any probe filter spends a lookup on them.
			chainFilters = append([]filters.Filter{
				harden(filters.NewReputation(rep), filters.FailOpen, 5),
			}, chainFilters...)
		}
		chain := filters.NewChain(chainFilters...)
		wl := whitelist.NewStore(ln.clk)
		relayDomains := []string(nil)
		if p.OpenRelay {
			relayDomains = []string{"relay-" + p.Domain}
		}
		eng := core.New(core.Config{
			Name:                 p.Name,
			Domains:              []string{p.Domain},
			OpenRelay:            p.OpenRelay,
			RelayDomains:         relayDomains,
			QuarantineTTL:        30 * day,
			ChallengeFrom:        mail.Address{Local: "challenge", Domain: p.Domain},
			ChallengeBaseURL:     "http://cr." + p.Domain,
			ChallengeSize:        1800,
			Seed:                 f.Cfg.Seed + int64(i)*7919,
			MaxChallengesPerHour: f.Cfg.ChallengeCapPerHour,
		}, ln.clk, f.resolve, chain, wl, nil)
		if rep != nil {
			eng.SetReputation(rep)
		}
		if f.Cfg.LogSink != nil {
			// Buffer events on the lane; the barrier flushes them to the
			// user's sink in canonical order (see Fleet.flushSinks).
			eng.SetEventSink(func(ev maillog.Event) {
				ln.logBuf = append(ln.logBuf, ev)
			})
		}
		if f.Cfg.UseGreylisting {
			f.greylists[p.Name] = greylist.New(greylist.DefaultConfig(), ln.clk)
		}
		if f.Cfg.Overload != nil {
			oc := *f.Cfg.Overload
			oc.Name = p.Name
			oc.Clock = ln.clk
			oc.EventSink = func(ev maillog.Event) {
				ln.logBuf = append(ln.logBuf, ev)
			}
			ln.ctl = overload.New(oc)
			// Under queue pressure the engine sheds its probe-filter
			// work (fail-open degradation) before admissions themselves
			// start tempfailing mail.
			eng.SetPressure(ln.ctl.Pressured)
		}
		if f.Cfg.SurgePlan != nil {
			ln.surge = faults.New(f.Cfg.SurgePlan,
				deriveSeed(f.Cfg.Seed, saltSurge, int64(i)), ln.clk)
		}
		f.DNS.RegisterMailDomain(p.Domain, challengeIP)

		// Protected accounts plus their seeded white/blacklists.
		users := make([]mail.Address, p.Users)
		for u := range users {
			addr := mail.Address{Local: fmt.Sprintf("user%04d", u), Domain: p.Domain}
			users[u] = addr
			eng.AddUser(addr)
			// Outbound activity is heavily skewed across users (most
			// people send little mail; a few send a lot), which is what
			// produces the paper's Figure 9 churn distribution: a
			// dominant low-churn mode with a long tail.
			au := f.rng.Float64()
			f.activity[addr.Canonical()] = au * au * 3
			nSeed := f.Cfg.Profiles[i].SeedWhitelist
			seeds := make([]mail.Address, 0, nSeed)
			for s := 0; s < nSeed; s++ {
				contact := f.legitPool[f.rng.Intn(len(f.legitPool))]
				if wl.AddWhite(addr, contact, whitelist.SourceSeed) {
					seeds = append(seeds, contact)
				}
			}
			f.seededWL[addr.Canonical()] = seeds
			bl := make([]mail.Address, 0, 2)
			for s := 0; s < 2; s++ {
				bad := f.innocents[f.rng.Intn(len(f.innocents))]
				if wl.AddBlack(addr, bad) {
					bl = append(bl, bad)
				}
			}
			f.seededBL[addr.Canonical()] = bl
		}
		f.users[p.Name] = users

		// One administratively rejected sender per company.
		banned := mail.Address{Local: "banned-" + p.Name, Domain: f.innocents[0].Domain}
		eng.RejectSender(banned)
		f.rejectedBy[p.Name] = banned

		comp := &simnet.Company{
			Name:        p.Name,
			Engine:      eng,
			ChallengeIP: challengeIP,
			MailIP:      mailIP,
		}
		ln.comp = comp
		f.Net.AttachCompanyLane(comp, ln.clk, ln.sched,
			deriveSeed(f.Cfg.Seed, saltNetLane, int64(i)))
		f.Companies = append(f.Companies, comp)
		f.lanes = append(f.lanes, ln)
	}

	// Canonical lane order: company name. Barrier-side iteration (sink
	// flushing) follows this order so outputs are worker-count-invariant
	// whatever order the profiles came in.
	sort.Slice(f.lanes, func(i, j int) bool {
		return f.lanes[i].comp.Name < f.lanes[j].comp.Name
	})

	// Precompute each lane's covering-campaign list. Coverage is random
	// per (campaign, company) with probability 0.3, drawn from a stream
	// derived from (seed, campaign, company) — the §5.1 decorrelation of
	// blacklisting risk from company size. Computing it eagerly here
	// (48 campaigns × lanes is trivial) removes a per-campaign mutex
	// acquisition from every generated spam message.
	for _, ln := range f.lanes {
		for _, c := range f.spamCamps {
			rng := rand.New(rand.NewSource(deriveSeed(f.Cfg.Seed, saltCampaignCovers, int64(c.ID), int64(ln.idx))))
			if rng.Float64() < 0.3 {
				ln.covering = append(ln.covering, c)
			}
		}
	}

	// The outbound-IP set the §5.1 checker polls: companies are fixed
	// after build, so compute it once here instead of every simulated
	// day (invalidate by clearing f.outIPs if companies ever change).
	f.outIPs = nil
	f.outIPs = f.allOutIPs()
}

// Day returns the current simulation day index (0-based).
func (f *Fleet) Day() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.day
}

// Truth returns the ground-truth class of a generated message.
func (f *Fleet) Truth(msgID string) (Class, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	c, ok := f.truth[msgID]
	return c, ok
}

// ClassCounts returns how many messages of each class were generated.
func (f *Fleet) ClassCounts() map[Class]int64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make(map[Class]int64, len(f.classCounts))
	for k, v := range f.classCounts {
		out[k] = v
	}
	return out
}

// GrayLog returns the per-message context captured for messages that
// entered the gray spool, keyed by message ID.
func (f *Fleet) GrayLog() map[string]GrayEntry {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make(map[string]GrayEntry, len(f.grayLog))
	for k, v := range f.grayLog {
		out[k] = v
	}
	return out
}

// Users returns the protected accounts of a company.
func (f *Fleet) Users(company string) []mail.Address { return f.users[company] }

// Profile returns a company's profile.
func (f *Fleet) Profile(company string) CompanyProfile { return f.profiles[company] }

// SpamCampaigns returns the botnet campaign list.
func (f *Fleet) SpamCampaigns() []*Campaign { return f.spamCamps }

// NewsletterCampaigns returns the newsletter campaign list.
func (f *Fleet) NewsletterCampaigns() []*Campaign { return f.newsCamps }

// LegitPool returns the population of real correspondent addresses.
func (f *Fleet) LegitPool() []mail.Address { return f.legitPool }

// Greylist returns a company's greylist store (nil unless
// UseGreylisting).
func (f *Fleet) Greylist(company string) *greylist.Store { return f.greylists[company] }

// Reputation returns a company's sender-reputation store (nil unless
// UseReputation).
func (f *Fleet) Reputation(company string) *reputation.Store { return f.reputation[company] }
