package workload

// interner deduplicates hot concatenated strings. Each lane owns one, so
// no locking: the generator builds the same handful of strings (resolver
// hostnames like "mail.partner03.example") millions of times per run, and
// interning turns every build after the first into a map hit.
type interner struct{ m map[string]string }

func newInterner() interner { return interner{m: make(map[string]string)} }

// concat returns the interned form of prefix+s. The candidate is built in
// *buf so a cache hit allocates nothing — Go's map lookup on
// string(byteSlice) does not copy the key.
func (in interner) concat(buf *[]byte, prefix, s string) string {
	b := append(append((*buf)[:0], prefix...), s...)
	*buf = b
	if v, ok := in.m[string(b)]; ok {
		return v
	}
	v := string(b)
	in.m[v] = v
	return v
}
