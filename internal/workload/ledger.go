package workload

import (
	"sync/atomic"
	"time"
)

// This file is the fleet's cross-lane effect ledger: the bookkeeping
// that lets the epoch barrier become *sparse*. Lanes stage their only
// cross-company side effects — spamtrap hits — in per-lane buffers
// (simnet lane.trapHits, appended lock-free on the lane goroutine). At
// every epoch rendezvous the coordinator consults the ledger predicate
// (barrierDue): if no lane staged an effect, no checker poll is due and
// the shared scheduler has nothing to drain, the barrier is skipped
// wholesale — the shared clock stays at the watermark (the last fired
// barrier) and no lane pays for cross-company synchronization it does
// not need. Determinism is preserved because the predicate depends only
// on lane-local state that is itself worker-count-invariant, so the
// fire/skip pattern — and with it every effect's virtual apply time —
// is identical for any worker count.

// SyncStats is a snapshot of the sparse-barrier and steal-scheduler
// counters accumulated across Run calls.
type SyncStats struct {
	// Epochs is the number of one-hour epochs executed.
	Epochs int64
	// BarriersFired counts epochs whose barrier ran the full cross-lane
	// work (clock advance, provider sweeps, trap-hit flush, checker
	// poll, state merge, sink flush).
	BarriersFired int64
	// BarriersSkipped counts epochs with no staged effect, skipped with
	// only a watermark bookkeeping update.
	BarriersSkipped int64
	// Steals counts lane work items executed by a worker other than the
	// one they were dealt to at epoch start.
	Steals int64
	// TrapHitsApplied counts staged spamtrap hits applied at barriers.
	TrapHitsApplied int64
}

// syncLedger holds the counters behind SyncStats. Steals are bumped by
// pool workers mid-epoch (hence atomics); the rest only by the
// coordinator between epochs.
type syncLedger struct {
	epochs      atomic.Int64
	fired       atomic.Int64
	skipped     atomic.Int64
	steals      atomic.Int64
	trapApplied atomic.Int64
	// watermark is the virtual time of the last fired barrier, i.e. how
	// far the *shared* clock has advanced (lanes may be ahead of it
	// between fired barriers).
	watermark atomic.Int64 // unix nanos
}

// SyncStats returns the sparse-barrier / steal-scheduler counters.
func (f *Fleet) SyncStats() SyncStats {
	return SyncStats{
		Epochs:          f.ledger.epochs.Load(),
		BarriersFired:   f.ledger.fired.Load(),
		BarriersSkipped: f.ledger.skipped.Load(),
		Steals:          f.ledger.steals.Load(),
		TrapHitsApplied: f.ledger.trapApplied.Load(),
	}
}

// Watermark returns the virtual time of the last fired barrier (the
// fleet start before any barrier fired).
func (f *Fleet) Watermark() time.Time {
	if ns := f.ledger.watermark.Load(); ns != 0 {
		return time.Unix(0, ns).UTC()
	}
	return f.Start
}

// barrierDue reports whether the epoch ending at epochEnd produced or
// requires a cross-lane effect, i.e. whether the barrier must fire:
//
//   - a lane staged a spamtrap hit (trap → blocklist propagation must
//     apply at this epoch's timestamp, in company-name order);
//   - the §5.1 checker poll falls on this epoch;
//   - the shared scheduler holds an event at or before epochEnd
//     (externally scheduled work must run at its due time).
//
// Every input is deterministic and worker-count-invariant: trap staging
// is a pure function of lane execution, the checker period is config,
// and nothing inside an epoch schedules on the shared scheduler. The
// caller must have synchronized with all lanes (epoch rendezvous).
func (f *Fleet) barrierDue(epochEnd time.Time) bool {
	if f.Net.StagedTrapHits() > 0 {
		return true
	}
	if f.Cfg.CheckerPeriod > 0 && epochEnd.Sub(f.Start)%f.Cfg.CheckerPeriod == 0 {
		return true
	}
	if at, ok := f.Sched.NextAt(); ok && !at.After(epochEnd) {
		return true
	}
	return false
}

// fireBarrier runs the full cross-lane barrier at epochEnd: advance the
// shared clock from the watermark, drain the shared scheduler, expire
// blocklist listings eagerly (Provider.Sweep), apply staged trap hits
// in company-name order, invalidate the RBL memo for exactly the IPs
// whose answers may have changed, poll the §5.1 checker when due, and
// fold lane staging into the shared state. All lanes are parked.
func (f *Fleet) fireBarrier(epochEnd time.Time) {
	f.ledger.fired.Add(1)
	f.Clk.AdvanceTo(epochEnd)
	f.Sched.RunUntil(epochEnd)

	// Provider sweeps close expired listings before the staged hits
	// apply — the same visible order the lazy expiry used to give (an
	// expired listing is dead before a hit at epochEnd can re-list).
	// The filter list's delisted IPs plus every trap-hit source IP form
	// the precise invalidation set for the RBL memo.
	var stale []string
	filter := f.filterProvider()
	for _, p := range f.Providers {
		swept := p.Sweep(epochEnd)
		if p == filter && f.RBLCache != nil {
			stale = append(stale, swept...)
		}
	}
	var onIP func(string)
	if f.RBLCache != nil {
		onIP = func(ip string) { stale = append(stale, ip) }
	}
	if applied := f.Net.FlushTrapHits(onIP); applied > 0 {
		f.ledger.trapApplied.Add(int64(applied))
	}
	if len(stale) > 0 {
		f.RBLCache.Invalidate(stale...)
	}

	if f.Cfg.CheckerPeriod > 0 {
		if since := epochEnd.Sub(f.Start); since%f.Cfg.CheckerPeriod == 0 {
			f.Checker.Poll(f.allOutIPs())
		}
	}
	f.mergeLaneState()
	f.flushSinks()
	f.ledger.watermark.Store(epochEnd.UnixNano())
}
