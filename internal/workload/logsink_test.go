package workload

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/logscan"
	"repro/internal/mail"
	"repro/internal/maillog"
)

// TestFleetLogCrossValidation runs a fleet with the decision log
// attached and verifies the log-derived statistics equal the engines'
// in-process counters — the methodology equivalence the paper's
// log-crawling measurement pipeline rests on, at fleet scale.
func TestFleetLogCrossValidation(t *testing.T) {
	mail.ResetIDCounter()
	var sb strings.Builder
	w := maillog.NewWriter(&sb)

	cfg := smallConfig(29)
	cfg.LogSink = w.Write
	f := NewFleet(cfg)
	f.Run(2)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	agg, err := maillog.ParseAll(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if agg.BadLines != 0 {
		t.Fatalf("unparsable lines = %d", agg.BadLines)
	}

	// The parallel scanner must reconstruct the identical aggregate — the
	// serial crawl and the production measurement path are interchangeable.
	scanned, err := logscan.Scan(strings.NewReader(sb.String()), logscan.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(scanned, agg) {
		t.Fatal("parallel logscan aggregate differs from serial ParseAll")
	}

	// Fleet-wide totals.
	var incoming, white, gray, challenges, filterDrops int64
	for _, c := range f.Companies {
		m := c.Engine.Metrics()
		incoming += m.MTAIncoming
		white += m.SpoolWhite
		gray += m.SpoolGray
		challenges += m.ChallengesSent
		filterDrops += m.TotalFilterDropped()
	}
	tot := agg.Total()
	if tot.Incoming != incoming {
		t.Errorf("incoming: log %d vs engines %d", tot.Incoming, incoming)
	}
	if tot.Spools["white"] != white || tot.Spools["gray"] != gray {
		t.Errorf("spools: log %+v vs engines white=%d gray=%d", tot.Spools, white, gray)
	}
	if tot.Challenges != challenges {
		t.Errorf("challenges: log %d vs engines %d", tot.Challenges, challenges)
	}
	var logFilterDrops int64
	for _, v := range tot.FilterDrops {
		logFilterDrops += v
	}
	if logFilterDrops != filterDrops {
		t.Errorf("filter drops: log %d vs engines %d", logFilterDrops, filterDrops)
	}

	// Per-company coverage: every company appears in the log.
	if got := len(agg.Companies()); got != len(f.Companies) {
		t.Errorf("log companies = %d, want %d", got, len(f.Companies))
	}
	// And each company's incoming matches its engine.
	for _, c := range f.Companies {
		la := agg.ByCompany[c.Name]
		if la == nil {
			t.Fatalf("company %s missing from log", c.Name)
		}
		if la.Incoming != c.Engine.Metrics().MTAIncoming {
			t.Errorf("%s incoming: log %d vs engine %d",
				c.Name, la.Incoming, c.Engine.Metrics().MTAIncoming)
		}
	}

	// Web events: solves recorded in the log equal the network's solved
	// count.
	if int(tot.WebSolves) != f.Net.DeliveryStats().Solved {
		t.Errorf("web solves: log %d vs network %d", tot.WebSolves, f.Net.DeliveryStats().Solved)
	}
}
