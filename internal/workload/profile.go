// Package workload synthesises the mail traffic of the 47 monitored
// companies. The paper's measurement data is proprietary, so this
// generator is the substitution: a seeded, parameterised population of
// companies, remote sender domains, spam campaigns, newsletters and
// legitimate correspondents whose class mix is calibrated to the
// proportions the paper reports (Figure 1/2/3 and the §2 drop table),
// while every downstream observable — challenge outcomes, blacklisting,
// delays, churn — emerges from the simulation dynamics.
package workload

import (
	"fmt"
	"math/rand"
	"time"
)

// Mix is the per-message traffic-class distribution at a company's
// MTA-IN. Fields must sum to at most 1; the remainder is spam addressed
// to existing users (the gray-spool feedstock).
type Mix struct {
	// Malformed: syntactically invalid sender/recipient (drop table: 0.06%).
	Malformed float64
	// UnresolvableSender: spoofed sender domain with no DNS (4.19%).
	UnresolvableSender float64
	// RelayAttempt: addressed to a domain the server does not serve
	// (2.27%); open relays accept these for their relayed domains.
	RelayAttempt float64
	// RejectedSender: administratively rejected sender (0.03%).
	RejectedSender float64
	// UnknownRecipient: spam to harvested/dictionary local parts that do
	// not exist (the study's dominant drop reason, 62.36%).
	UnknownRecipient float64
	// WhiteKnown: mail from senders already in the recipient's whitelist.
	WhiteKnown float64
	// BlackKnown: mail from senders on the recipient's blacklist.
	BlackKnown float64
	// LegitNew: first-contact legitimate mail (new human correspondent).
	LegitNew float64
	// Newsletter: automated marketing/newsletter mail from campaign
	// senders with high sender similarity.
	Newsletter float64
	// NullSender: bounces/DSNs with the null reverse-path.
	NullSender float64
}

// SpamToKnown returns the residual probability: spam campaigns aimed at
// existing protected users.
func (m Mix) SpamToKnown() float64 {
	s := 1 - m.Malformed - m.UnresolvableSender - m.RelayAttempt - m.RejectedSender -
		m.UnknownRecipient - m.WhiteKnown - m.BlackKnown - m.LegitNew - m.Newsletter - m.NullSender
	if s < 0 {
		return 0
	}
	return s
}

// DefaultMix is calibrated so the MTA-IN and dispatcher proportions land
// near the paper's Figure 1 (per 1,000 incoming: 757 dropped at MTA,
// 31 white, 4 black, 208 gray).
func DefaultMix() Mix {
	return Mix{
		Malformed:          0.0007,
		UnresolvableSender: 0.046,
		RelayAttempt:       0.025,
		RejectedSender:     0.0004,
		UnknownRecipient:   0.685,
		WhiteKnown:         0.031,
		BlackKnown:         0.004,
		LegitNew:           0.0015,
		Newsletter:         0.0035,
		NullSender:         0.002,
	}
}

// Validate checks that the class probabilities are sane.
func (m Mix) Validate() error {
	total := m.Malformed + m.UnresolvableSender + m.RelayAttempt + m.RejectedSender +
		m.UnknownRecipient + m.WhiteKnown + m.BlackKnown + m.LegitNew + m.Newsletter + m.NullSender
	if total > 1+1e-9 {
		return fmt.Errorf("workload: mix sums to %v > 1", total)
	}
	for _, p := range []float64{m.Malformed, m.UnresolvableSender, m.RelayAttempt,
		m.RejectedSender, m.UnknownRecipient, m.WhiteKnown, m.BlackKnown,
		m.LegitNew, m.Newsletter, m.NullSender} {
		if p < 0 {
			return fmt.Errorf("workload: negative class probability")
		}
	}
	return nil
}

// jitterMix returns a copy of m with each class probability scaled by a
// company-specific factor in [1-j, 1+j], producing the cross-company
// variability visible in the paper's Figure 5 histograms.
func jitterMix(m Mix, rng *rand.Rand, j float64) Mix {
	f := func(p float64) float64 {
		v := p * (1 + (rng.Float64()*2-1)*j)
		if v < 0 {
			return 0
		}
		return v
	}
	return Mix{
		Malformed:          f(m.Malformed),
		UnresolvableSender: f(m.UnresolvableSender),
		RelayAttempt:       f(m.RelayAttempt),
		RejectedSender:     f(m.RejectedSender),
		UnknownRecipient:   f(m.UnknownRecipient),
		WhiteKnown:         f(m.WhiteKnown),
		BlackKnown:         f(m.BlackKnown),
		LegitNew:           f(m.LegitNew),
		Newsletter:         f(m.Newsletter),
		NullSender:         f(m.NullSender),
	}
}

// CompanyProfile parameterises one installation.
type CompanyProfile struct {
	// Name and Domain identify the company.
	Name   string
	Domain string
	// Users is the number of protected accounts.
	Users int
	// DailyVolume is the expected number of messages/day at the MTA-IN.
	DailyVolume int
	// OpenRelay mirrors the 13-of-47 open-relay installations.
	OpenRelay bool
	// SplitMTAOut gives challenges their own IP (a third of the study's
	// systems).
	SplitMTAOut bool
	// SeedWhitelist is the number of pre-existing whitelist entries per
	// user (historical contacts).
	SeedWhitelist int
	// OutboundPerUserDay is the expected outbound messages per user per
	// day (drives implicit whitelisting and the §5.1 user-mail channel).
	OutboundPerUserDay float64
	// DigestDiligence is the probability a user processes their digest on
	// a given day (authorizing wanted mail, deleting junk).
	DigestDiligence float64
	// Mix is this company's traffic-class distribution.
	Mix Mix
}

// DefaultProfiles builds n company profiles resembling the study's
// population: most companies under 500 users, a few much larger, 13/47
// open relays, a third with split MTA-OUT. The distribution shapes match
// the Figure 5 histograms.
func DefaultProfiles(n int, rng *rand.Rand) []CompanyProfile {
	profiles := make([]CompanyProfile, n)
	openRelays := n * 13 / 47
	split := n / 3
	for i := range profiles {
		var users int
		switch {
		case i%9 == 8: // a few big installations
			users = 800 + rng.Intn(1800)
		case i%3 == 2:
			users = 150 + rng.Intn(350)
		default:
			users = 20 + rng.Intn(130)
		}
		// Volume roughly tracks users but with heavy noise — the paper
		// found users and email volume only loosely correlated.
		volume := users*(8+rng.Intn(25)) + rng.Intn(500)
		profiles[i] = CompanyProfile{
			Name:               fmt.Sprintf("company-%02d", i),
			Domain:             fmt.Sprintf("corp%02d.example", i),
			Users:              users,
			DailyVolume:        volume,
			OpenRelay:          i < openRelays,
			SplitMTAOut:        i%3 == 0 && split > 0,
			SeedWhitelist:      8 + rng.Intn(40),
			OutboundPerUserDay: 0.2 + rng.Float64()*0.8,
			DigestDiligence:    0.2 + rng.Float64()*0.6,
			Mix:                jitterMix(DefaultMix(), rng, 0.25),
		}
	}
	return profiles
}

// Durations used across the generator.
const (
	day = 24 * time.Hour
)
