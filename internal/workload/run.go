package workload

import (
	"math"
	"math/rand"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/digest"
	"repro/internal/filters"
	"repro/internal/greylist"
	"repro/internal/mail"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// Run advances the simulation by the given number of days, generating
// each company's daily traffic, running the challenge/solve machinery in
// virtual time, and performing the daily chores (digest generation and
// weeding, outbound user mail, quarantine expiry) plus the 4-hourly
// §5.1 blacklist poll.
//
// Companies execute on independent lanes advanced in one-hour epochs by
// a persistent work-stealing pool of Config.Workers goroutines
// (schedule.go). Cross-lane synchronization is *sparse*: at each epoch
// rendezvous the effect ledger (ledger.go) decides whether any
// cross-company effect was staged — trap hits, a due checker poll, a
// pending shared-scheduler event — and only then does the barrier fire;
// idle epochs are skipped with a watermark advance and the shared clock
// stays frozen. The last epoch of every day always fires, so public
// accessors are consistent whenever Run returns. All effects apply in
// company-name order at deterministic virtual times, so the results are
// bit-for-bit identical for any worker count.
func (f *Fleet) Run(days int) {
	if days <= 0 {
		return
	}
	ls := newLaneScheduler(f, f.workers())
	defer ls.stop()
	for d := 0; d < days; d++ {
		dayStart := f.scheduleDay()
		for h := 1; h <= 24; h++ {
			epochEnd := dayStart.Add(time.Duration(h) * time.Hour)
			ls.advance(epochEnd)
			f.ledger.epochs.Add(1)
			// The day's final epoch always fires: it bounds sink-buffer
			// growth and leaves the shared clock, merged state and day
			// counter consistent for between-Run readers.
			if h == 24 || f.barrierDue(epochEnd) {
				f.fireBarrier(epochEnd)
			} else {
				f.ledger.skipped.Add(1)
			}
		}
		f.mu.Lock()
		f.day++
		f.mu.Unlock()
	}
}

// workers resolves the effective worker-pool size.
func (f *Fleet) workers() int {
	w := f.Cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	// A fault plan shares one seeded injector RNG across every consumer;
	// parallel lanes would make its draw order depend on goroutine
	// scheduling, so chaos runs stay serial to remain reproducible.
	if f.Injector != nil {
		w = 1
	}
	return max(1, min(w, len(f.lanes)))
}

// scheduleDay queues the current day's traffic on every lane and
// returns the day's start time. It runs between epochs, with every lane
// parked at the previous day's final (always-fired) barrier.
func (f *Fleet) scheduleDay() time.Time {
	f.mu.Lock()
	dayIdx := f.day
	f.mu.Unlock()
	dayStart := f.Start.Add(time.Duration(dayIdx) * day)

	// Schedule each company's hourly traffic batches and end-of-day
	// chores on its own lane.
	for _, ln := range f.lanes {
		ln := ln
		volume := int(float64(ln.profile.DailyVolume) * f.Cfg.ScaleVolume)
		for h := 0; h < 24; h++ {
			n := volume / 24
			if h < volume%24 {
				n++
			}
			// Surge bursts top the hour up with extra botnet spam so total
			// volume hits roughly Intensity× baseline (max(n,1) keeps a
			// burst visible even at tiny scaled volumes).
			extra := f.burstExtra(dayIdx, h, max(n, 1))
			if n == 0 && extra == 0 {
				continue
			}
			count, boost := n, extra
			ln.sched.At(dayStart.Add(time.Duration(h)*time.Hour), func() {
				// The burst spam floods first: ham arriving behind it
				// inside the window sees a saturated queue, which is
				// exactly the shed-then-retry path the surge experiment
				// must exercise.
				for i := 0; i < boost; i++ {
					f.injectClass(ln, ClassSpam)
				}
				for i := 0; i < count; i++ {
					f.injectOne(ln)
				}
			})
		}
		ln.sched.At(dayStart.Add(23*time.Hour+50*time.Minute), func() {
			f.dailyChores(ln, dayIdx)
		})
	}
	return dayStart
}

// mergeLaneState folds every lane's staged ground-truth writes (truth
// labels, gray-spool context, class counts) into the shared maps under
// one f.mu acquisition per barrier. During the epoch the lanes write
// these lock-free into lane-local staging, so the per-message hot path
// never contends on f.mu; readers of the public accessors see state
// complete up to the last barrier.
func (f *Fleet) mergeLaneState() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, ln := range f.lanes {
		for id, c := range ln.truth {
			f.truth[id] = c
		}
		clear(ln.truth)
		for id, g := range ln.grayLog {
			f.grayLog[id] = g
		}
		clear(ln.grayLog)
		for cl, n := range ln.classCounts {
			if n != 0 {
				f.classCounts[Class(cl)] += n
				ln.classCounts[cl] = 0
			}
		}
	}
}

// laneTruth looks up a message's ground-truth class: the lane's staging
// map first (entries from the current epoch, lock-free), then the shared
// merged map.
func (f *Fleet) laneTruth(ln *companyLane, id string) (Class, bool) {
	if c, ok := ln.truth[id]; ok {
		return c, true
	}
	f.mu.RLock()
	c, ok := f.truth[id]
	f.mu.RUnlock()
	return c, ok
}

// flushSinks drains every lane's buffered maillog/trace events to the
// configured sinks, in canonical lane order.
func (f *Fleet) flushSinks() {
	for _, ln := range f.lanes {
		if f.Cfg.LogSink != nil {
			for _, ev := range ln.logBuf {
				f.Cfg.LogSink(ev)
			}
		}
		ln.logBuf = ln.logBuf[:0]
		if f.Cfg.TraceSink != nil {
			for _, r := range ln.traceBuf {
				f.Cfg.TraceSink(r)
			}
		}
		ln.traceBuf = ln.traceBuf[:0]
	}
}

// allOutIPs lists every company's outbound IPs (challenge + user mail).
// The set is fixed after buildCompanies, which caches it in f.outIPs;
// anything that adds or removes a company must clear that field.
func (f *Fleet) allOutIPs() []string {
	if f.outIPs != nil {
		return f.outIPs
	}
	var ips []string
	seen := make(map[string]bool)
	for _, c := range f.Companies {
		for _, ip := range []string{c.ChallengeIP, c.MailIP} {
			if !seen[ip] {
				seen[ip] = true
				ips = append(ips, ip)
			}
		}
	}
	f.outIPs = ips
	return ips
}

// msgPool recycles mail.Message structs on the injection hot path. Only
// messages nothing retains are returned to it (MTA rejections, abandoned
// greylist retries — the large majority of generated traffic); accepted
// messages may live on in an engine's quarantine. Pooled messages are
// zeroed before reuse, so recycling cannot leak state between messages
// or perturb simulation outcomes.
var msgPool = sync.Pool{New: func() any { return new(mail.Message) }}

func getMsg() *mail.Message  { return msgPool.Get().(*mail.Message) }
func putMsg(m *mail.Message) { *m = mail.Message{}; msgPool.Put(m) }

// bodyFiller backs generated message bodies: slicing a shared string
// costs nothing per message, where strings.Repeat used to allocate.
var bodyFiller = strings.Repeat("x", 256)

// drawClass samples a traffic class from the company's mix.
func drawClass(rng *rand.Rand, m Mix) Class {
	u := rng.Float64()
	for _, c := range []struct {
		p  float64
		cl Class
	}{
		{m.Malformed, ClassMalformed},
		{m.UnresolvableSender, ClassUnresolvable},
		{m.RelayAttempt, ClassRelayAttempt},
		{m.RejectedSender, ClassRejectedSender},
		{m.UnknownRecipient, ClassUnknownRecipient},
		{m.WhiteKnown, ClassWhite},
		{m.BlackKnown, ClassBlack},
		{m.LegitNew, ClassLegitNew},
		{m.Newsletter, ClassNewsletter},
		{m.NullSender, ClassNullSender},
	} {
		if u < c.p {
			return c.cl
		}
		u -= c.p
	}
	return ClassSpam
}

// injectOne generates and delivers one message to a company's MTA-IN.
// It runs on the lane's goroutine: all randomness comes from the lane
// RNG, and ground-truth writes stage in lane-local maps merged at the
// next barrier (mergeLaneState) — no shared lock per message.
func (f *Fleet) injectOne(ln *companyLane) {
	f.injectClass(ln, drawClass(ln.rng, ln.profile.Mix))
}

// injectClass generates and delivers one message of a fixed class
// (surge bursts inject extra ClassSpam directly, bypassing the mix).
func (f *Fleet) injectClass(ln *companyLane, class Class) {
	comp, p := ln.comp, ln.profile
	msg := f.buildMessage(ln, p, class)
	ln.classCounts[class]++

	if f.Cfg.TraceSink != nil {
		ln.traceBuf = append(ln.traceBuf, trace.FromMessage(comp.Name, msg, class.String()))
	}

	// Greylisting (when enabled) gates messages that would otherwise be
	// accepted: real senders' MTAs retry after the delay, botnet cannons
	// mostly do not. Rejections for unknown users etc. stay permanent.
	if gl := f.greylists[comp.Name]; gl != nil && comp.Engine.CheckMTAIn(msg) == core.Accepted {
		if gl.Check(msg.ClientIP, msg.EnvelopeFrom, msg.Rcpt) == greylist.TempReject {
			retries := class == ClassWhite || class == ClassLegitNew || class == ClassNewsletter ||
				ln.rng.Float64() < f.Cfg.SpamRetryProb
			if !retries {
				retries = comp.Engine.Whitelists().IsWhite(msg.Rcpt, msg.EnvelopeFrom)
			}
			delay := 16*time.Minute + time.Duration(ln.rng.Int63n(int64(30*time.Minute)))
			if !retries {
				putMsg(msg) // dropped by the greylist, never retried
				return
			}
			ln.sched.After(delay, func() {
				msg.Received = ln.clk.Now()
				if gl.Check(msg.ClientIP, msg.EnvelopeFrom, msg.Rcpt) == greylist.Accept {
					f.deliverToEngine(ln, msg, class)
				} else {
					putMsg(msg)
				}
			})
			return
		}
	}
	f.deliverToEngine(ln, msg, class)
}

// deliverToEngine hands an (un-greylisted or retried) message to the
// engine, passing the admission controller first when overload control
// is on (greylisting already ran: the 451s compose, greylist at RCPT
// and admission at delivery, matching the live gateway's ordering).
func (f *Fleet) deliverToEngine(ln *companyLane, msg *mail.Message, class Class) {
	if ln.ctl == nil {
		f.deliverNow(ln, msg, class, 0)
		return
	}
	f.admitAndDeliver(ln, msg, class, 0)
}

// deliverNow performs the actual engine handoff and captures gray-spool
// context. attempt counts prior admission sheds of this message.
func (f *Fleet) deliverNow(ln *companyLane, msg *mail.Message, class Class, attempt int) {
	if attempt > 0 && class.Wanted() {
		ln.surgeStats.hamRecovered++
	}
	verdict := ln.comp.Engine.Receive(msg)
	if verdict != 0 { // core.Accepted == 0
		// MTA rejections retain nothing: recycle the message.
		putMsg(msg)
		return
	}
	// Capture gray-spool context for the offline SPF what-if (E14),
	// staged lane-locally and merged at the barrier.
	switch class {
	case ClassLegitNew, ClassNewsletter, ClassSpam, ClassRelayAttempt, ClassNullSender:
		ln.grayLog[msg.ID] = GrayEntry{
			MsgID:    msg.ID,
			From:     msg.EnvelopeFrom,
			ClientIP: msg.ClientIP,
			Subject:  msg.Subject,
		}
	}
}

// buildMessage constructs the mail.Message for a class, drawing from the
// lane RNG and minting a lane-scoped ID (globally unique because lane
// prefixes are company names).
func (f *Fleet) buildMessage(ln *companyLane, p CompanyProfile, class Class) *mail.Message {
	comp := ln.comp
	rng := ln.rng
	m := getMsg()
	m.ID = ln.ids.Next()
	m.Received = ln.clk.Now()
	// Ground truth is only consulted for messages that can reach the
	// gray spool (digest weeding, spurious-delivery scoring); skipping
	// the rest keeps long runs lean.
	switch class {
	case ClassLegitNew, ClassNewsletter, ClassSpam, ClassNullSender, ClassRelayAttempt:
		ln.truth[m.ID] = class
	}

	users := f.users[comp.Name]
	randUser := func() mail.Address { return users[rng.Intn(len(users))] }
	randBot := func() botIP { return f.botnet[rng.Intn(len(f.botnet))] }
	legitIPFor := func(domain string) string {
		host := ln.names.concat(&ln.scratch, "mail.", domain)
		if ips, err := f.resolve.LookupA(host); err == nil && len(ips) > 0 {
			return ips[0]
		}
		return "192.0.2.250"
	}

	switch class {
	case ClassMalformed:
		m.EnvelopeFrom = f.innocents[rng.Intn(len(f.innocents))]
		m.Rcpt = mail.Address{} // unparsable recipient
		m.Subject = "malformed addressing"
		m.Size = 900 + rng.Intn(2000)
		m.ClientIP = randBot().ip

	case ClassUnresolvable:
		dom := f.unresolvable[rng.Intn(len(f.unresolvable))]
		m.EnvelopeFrom = mail.Address{Local: ln.numbered("x", rng.Intn(10000)), Domain: dom}
		m.Rcpt = randUser()
		m.Subject = makeSubject(rng, "")
		m.Size = 1500 + rng.Intn(4000)
		m.ClientIP = randBot().ip

	case ClassRelayAttempt:
		m.EnvelopeFrom = f.innocents[rng.Intn(len(f.innocents))]
		if p.OpenRelay {
			// Open relays accept mail for their relayed domains,
			// addressed to arbitrary mailboxes.
			m.Rcpt = mail.Address{
				Local:  ln.numbered("box", rng.Intn(5000)),
				Domain: ln.names.concat(&ln.scratch, "relay-", p.Domain),
			}
		} else {
			m.Rcpt = mail.Address{Local: "info", Domain: f.foreignDomain}
		}
		camp := f.pickSpamCampaign(ln)
		m.Subject = camp.Subject
		m.Size = camp.MsgSize
		m.ClientIP = randBot().ip

	case ClassRejectedSender:
		m.EnvelopeFrom = f.rejectedBy[comp.Name]
		m.Rcpt = randUser()
		m.Subject = "message from rejected sender"
		m.Size = 1200
		m.ClientIP = randBot().ip

	case ClassUnknownRecipient:
		m.EnvelopeFrom = f.innocents[rng.Intn(len(f.innocents))]
		m.Rcpt = mail.Address{
			Local:  ln.numbered("harvest", rng.Intn(1000000)),
			Domain: p.Domain,
		}
		camp := f.pickSpamCampaign(ln)
		m.Subject = camp.Subject
		m.Size = camp.MsgSize
		m.ClientIP = randBot().ip

	case ClassWhite:
		u := randUser()
		m.Rcpt = u
		seeds := f.seededWL[u.Canonical()]
		if len(seeds) == 0 {
			m.EnvelopeFrom = f.legitPool[rng.Intn(len(f.legitPool))]
		} else {
			m.EnvelopeFrom = seeds[rng.Intn(len(seeds))]
		}
		m.Subject = makeSubject(rng, "re")
		m.Size = 4000 + rng.Intn(45000)
		m.ClientIP = legitIPFor(m.EnvelopeFrom.Domain)

	case ClassBlack:
		u := randUser()
		m.Rcpt = u
		bl := f.seededBL[u.Canonical()]
		if len(bl) == 0 {
			m.EnvelopeFrom = f.innocents[rng.Intn(len(f.innocents))]
		} else {
			m.EnvelopeFrom = bl[rng.Intn(len(bl))]
		}
		m.Subject = makeSubject(rng, "")
		m.Size = 1500 + rng.Intn(4000)
		m.ClientIP = legitIPFor(m.EnvelopeFrom.Domain)

	case ClassLegitNew:
		m.Rcpt = randUser()
		m.EnvelopeFrom = f.legitPool[rng.Intn(len(f.legitPool))]
		m.Subject = makeSubject(rng, "hello")
		m.Size = 4000 + rng.Intn(30000)
		m.ClientIP = legitIPFor(m.EnvelopeFrom.Domain)

	case ClassNewsletter:
		camp := f.newsCamps[rng.Intn(len(f.newsCamps))]
		m.Rcpt = randUser()
		m.EnvelopeFrom = camp.Senders[rng.Intn(len(camp.Senders))]
		m.Subject = camp.Subject
		m.Size = camp.MsgSize
		m.ClientIP = legitIPFor(m.EnvelopeFrom.Domain)

	case ClassNullSender:
		m.EnvelopeFrom = mail.Null
		m.Rcpt = randUser()
		m.Subject = "Delivery Status Notification (Failure) for your recent message attempt"
		m.Size = 2200
		m.ClientIP = legitIPFor(f.legitPool[0].Domain)

	default: // ClassSpam
		camp := f.pickSpamCampaign(ln)
		targets := f.laneTargets(camp, ln)
		m.Rcpt = targets[rng.Intn(len(targets))]
		m.EnvelopeFrom = camp.SpoofPool[rng.Intn(len(camp.SpoofPool))]
		m.Subject = camp.Subject
		m.Size = camp.MsgSize
		bot := randBot()
		m.ClientIP = bot.ip
		if rng.Float64() < camp.VirusProb {
			m.Body = "please see the attached file " + filters.EICAR
		}
	}
	m.HeaderFrom = m.EnvelopeFrom
	if m.Body == "" {
		m.Body = bodyFiller[:min(m.Size, len(bodyFiller))]
	}
	return m
}

// pickSpamCampaign selects an active campaign covering the company, by
// weight; it degrades to any covering campaign, then to any campaign
// (spam never stops entirely). The covering list is precomputed per
// lane (buildCompanies) and the active scratch slice is reused, so a
// pick costs no locks and no steady-state allocations.
func (f *Fleet) pickSpamCampaign(ln *companyLane) *Campaign {
	// f.day is written only between days, while every lane is parked at
	// the final barrier, so the unlocked read is safe.
	dayIdx := f.day
	active := ln.active[:0]
	var total float64
	for _, c := range ln.covering {
		if c.ActiveOn(dayIdx) {
			active = append(active, c)
			total += c.Weight
		}
	}
	ln.active = active
	if len(active) == 0 {
		if len(ln.covering) > 0 {
			return ln.covering[ln.rng.Intn(len(ln.covering))]
		}
		return f.spamCamps[ln.rng.Intn(len(f.spamCamps))]
	}
	u := ln.rng.Float64() * total
	for _, c := range active {
		if u < c.Weight {
			return c
		}
		u -= c.Weight
	}
	return active[len(active)-1]
}

// laneTargets returns (memoised per lane) the subset of the company's
// users a campaign mails: spammers recycle harvested lists, so the same
// users get hit repeatedly. The selection comes from a stream derived
// from (seed, campaign, company) so it is identical no matter which
// lane — or how many lanes — computes it; each lane therefore keeps its
// own copy without cross-lane locking.
func (f *Fleet) laneTargets(c *Campaign, ln *companyLane) []mail.Address {
	if ts, ok := ln.targets[c.ID]; ok {
		return ts
	}
	users := f.users[ln.comp.Name]
	n := min(max(len(users)*2/5, 5), len(users))
	rng := rand.New(rand.NewSource(deriveSeed(f.Cfg.Seed, saltCampaignTargets, int64(c.ID), int64(ln.idx))))
	perm := rng.Perm(len(users))
	ts := make([]mail.Address, n)
	for i := 0; i < n; i++ {
		ts[i] = users[perm[i]]
	}
	ln.targets[c.ID] = ts
	return ts
}

// numbered renders prefix+decimal(n) through the lane scratch buffer, so
// minting a synthetic local part costs exactly the one unavoidable
// allocation (the returned string) instead of fmt.Sprintf's several.
func (ln *companyLane) numbered(prefix string, n int) string {
	ln.scratch = strconv.AppendInt(append(ln.scratch[:0], prefix...), int64(n), 10)
	return string(ln.scratch)
}

// dailyChores records digests, simulates digest weeding and outbound
// user mail, and expires old quarantine entries — for one lane's
// company, on that lane's goroutine.
func (f *Fleet) dailyChores(ln *companyLane, dayIdx int) {
	today := f.Start.Add(time.Duration(dayIdx) * day)
	comp, p := ln.comp, ln.profile
	eng := comp.Engine
	for _, u := range f.users[comp.Name] {
		pending := eng.PendingForUser(u)
		f.Digests.Record(u, today, pending)

		diligent := ln.rng.Float64() < p.DigestDiligence
		if diligent && len(pending) > 0 {
			f.weedDigest(ln, u, pending)
		}

		// Outbound mail: implicit whitelisting plus the §5.1
		// user-mail exposure channel. Rates are per-user skewed.
		nOut := poisson(ln.rng, p.OutboundPerUserDay*f.activity[u.Canonical()])
		for i := 0; i < nOut; i++ {
			f.sendOutbound(ln, u)
		}
	}
	eng.ExpireQuarantine()
}

// weedDigest simulates the user working through their digest: authorize
// wanted mail, delete junk, leave the rest.
func (f *Fleet) weedDigest(ln *companyLane, u mail.Address, pending []digest.Item) {
	for _, item := range pending {
		class, _ := f.laneTruth(ln, item.MsgID)
		authorize := class.Wanted() && ln.rng.Float64() < f.Cfg.DigestAuthorizeProb
		del := !class.Wanted() && ln.rng.Float64() < f.Cfg.DigestDeleteProb
		switch {
		case authorize:
			_ = ln.comp.Engine.AuthorizeFromDigest(u, item.MsgID)
		case del:
			_ = ln.comp.Engine.DeleteFromDigest(u, item.MsgID)
		}
	}
}

// sendOutbound models one outbound user message: 80% to an existing
// contact, 20% to a brand-new address (which then gets auto-whitelisted).
func (f *Fleet) sendOutbound(ln *companyLane, u mail.Address) {
	var to mail.Address
	seeds := f.seededWL[u.Canonical()]
	if len(seeds) > 0 && ln.rng.Float64() < 0.8 {
		to = seeds[ln.rng.Intn(len(seeds))]
	} else {
		to = f.legitPool[ln.rng.Intn(len(f.legitPool))]
	}
	ln.comp.Engine.UserSentMail(u, to)
	f.Net.SendUserMail(ln.comp, to)
}

// poisson draws from a Poisson distribution via Knuth's method (fine for
// the small lambdas used here).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k
		}
	}
}

// _ = simnet reference kept: Company originates there.
var _ *simnet.Company
