package workload

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/digest"
	"repro/internal/filters"
	"repro/internal/greylist"
	"repro/internal/mail"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// Run advances the simulation by the given number of days, generating
// each company's daily traffic, running the challenge/solve machinery in
// virtual time, and performing the daily chores (digest generation and
// weeding, outbound user mail, quarantine expiry) plus the 4-hourly
// §5.1 blacklist poll.
func (f *Fleet) Run(days int) {
	for d := 0; d < days; d++ {
		f.runOneDay()
	}
}

// runOneDay generates and processes one simulated day.
func (f *Fleet) runOneDay() {
	f.mu.Lock()
	dayIdx := f.day
	f.mu.Unlock()
	dayStart := f.Start.Add(time.Duration(dayIdx) * day)

	// Hourly traffic batches for every company.
	for _, comp := range f.Companies {
		comp := comp
		p := f.profiles[comp.Name]
		volume := int(float64(p.DailyVolume) * f.Cfg.ScaleVolume)
		for h := 0; h < 24; h++ {
			n := volume / 24
			if h < volume%24 {
				n++
			}
			if n == 0 {
				continue
			}
			count := n
			f.Sched.At(dayStart.Add(time.Duration(h)*time.Hour), func() {
				for i := 0; i < count; i++ {
					f.injectOne(comp)
				}
			})
		}
	}

	// The §5.1 blacklist checker polls every CheckerPeriod.
	ips := f.allOutIPs()
	for t := f.Cfg.CheckerPeriod; t <= day; t += f.Cfg.CheckerPeriod {
		f.Sched.At(dayStart.Add(t), func() { f.Checker.Poll(ips) })
	}

	// End-of-day chores.
	f.Sched.At(dayStart.Add(23*time.Hour+50*time.Minute), func() {
		f.dailyChores(dayIdx)
	})

	f.Sched.RunUntil(dayStart.Add(day))
	f.mu.Lock()
	f.day++
	f.mu.Unlock()
}

// allOutIPs lists every company's outbound IPs (challenge + user mail).
func (f *Fleet) allOutIPs() []string {
	var ips []string
	seen := make(map[string]bool)
	for _, c := range f.Companies {
		for _, ip := range []string{c.ChallengeIP, c.MailIP} {
			if !seen[ip] {
				seen[ip] = true
				ips = append(ips, ip)
			}
		}
	}
	return ips
}

// drawClass samples a traffic class from the company's mix.
func drawClass(rng *rand.Rand, m Mix) Class {
	u := rng.Float64()
	for _, c := range []struct {
		p  float64
		cl Class
	}{
		{m.Malformed, ClassMalformed},
		{m.UnresolvableSender, ClassUnresolvable},
		{m.RelayAttempt, ClassRelayAttempt},
		{m.RejectedSender, ClassRejectedSender},
		{m.UnknownRecipient, ClassUnknownRecipient},
		{m.WhiteKnown, ClassWhite},
		{m.BlackKnown, ClassBlack},
		{m.LegitNew, ClassLegitNew},
		{m.Newsletter, ClassNewsletter},
		{m.NullSender, ClassNullSender},
	} {
		if u < c.p {
			return c.cl
		}
		u -= c.p
	}
	return ClassSpam
}

// injectOne generates and delivers one message to a company's MTA-IN.
func (f *Fleet) injectOne(comp *simnet.Company) {
	f.mu.Lock()
	p := f.profiles[comp.Name]
	class := drawClass(f.rng, p.Mix)
	f.classCounts[class]++
	msg := f.buildMessage(comp, p, class)
	f.mu.Unlock()

	if f.Cfg.TraceSink != nil {
		f.Cfg.TraceSink(trace.FromMessage(comp.Name, msg, class.String()))
	}

	// Greylisting (when enabled) gates messages that would otherwise be
	// accepted: real senders' MTAs retry after the delay, botnet cannons
	// mostly do not. Rejections for unknown users etc. stay permanent.
	if gl := f.greylists[comp.Name]; gl != nil && comp.Engine.CheckMTAIn(msg) == core.Accepted {
		if gl.Check(msg.ClientIP, msg.EnvelopeFrom, msg.Rcpt) == greylist.TempReject {
			f.mu.Lock()
			cls := f.truth[msg.ID]
			retries := cls == ClassWhite || cls == ClassLegitNew || cls == ClassNewsletter ||
				f.rng.Float64() < f.Cfg.SpamRetryProb
			// White messages don't carry truth entries; infer from the
			// whitelist instead.
			if !retries {
				retries = comp.Engine.Whitelists().IsWhite(msg.Rcpt, msg.EnvelopeFrom)
			}
			delay := 16*time.Minute + time.Duration(f.rng.Int63n(int64(30*time.Minute)))
			f.mu.Unlock()
			if retries {
				f.Sched.After(delay, func() {
					msg.Received = f.Clk.Now()
					if gl.Check(msg.ClientIP, msg.EnvelopeFrom, msg.Rcpt) == greylist.Accept {
						f.deliverToEngine(comp, msg)
					}
				})
			}
			return
		}
	}
	f.deliverToEngine(comp, msg)
}

// deliverToEngine hands an (un-greylisted or retried) message to the
// engine and captures gray-spool context.
func (f *Fleet) deliverToEngine(comp *simnet.Company, msg *mail.Message) {
	verdict := comp.Engine.Receive(msg)
	if verdict != 0 { // core.Accepted == 0
		return
	}
	// Capture gray-spool context for the offline SPF what-if (E14).
	f.mu.Lock()
	switch f.truth[msg.ID] {
	case ClassLegitNew, ClassNewsletter, ClassSpam, ClassRelayAttempt, ClassNullSender:
		f.grayLog[msg.ID] = GrayEntry{
			MsgID:    msg.ID,
			From:     msg.EnvelopeFrom,
			ClientIP: msg.ClientIP,
			Subject:  msg.Subject,
		}
	}
	f.mu.Unlock()
}

// buildMessage constructs the mail.Message for a class. Caller holds f.mu.
func (f *Fleet) buildMessage(comp *simnet.Company, p CompanyProfile, class Class) *mail.Message {
	now := f.Clk.Now()
	m := &mail.Message{
		ID:       mail.NewID(comp.Name),
		Received: now,
	}
	// Ground truth is only consulted for messages that can reach the
	// gray spool (digest weeding, spurious-delivery scoring); skipping
	// the rest keeps long runs lean.
	switch class {
	case ClassLegitNew, ClassNewsletter, ClassSpam, ClassNullSender, ClassRelayAttempt:
		f.truth[m.ID] = class
	}

	users := f.users[comp.Name]
	randUser := func() mail.Address { return users[f.rng.Intn(len(users))] }
	randBot := func() botIP { return f.botnet[f.rng.Intn(len(f.botnet))] }
	legitIPFor := func(domain string) string {
		if ips, err := f.DNS.LookupA("mail." + domain); err == nil && len(ips) > 0 {
			return ips[0]
		}
		return "192.0.2.250"
	}

	switch class {
	case ClassMalformed:
		m.EnvelopeFrom = f.innocents[f.rng.Intn(len(f.innocents))]
		m.Rcpt = mail.Address{} // unparsable recipient
		m.Subject = "malformed addressing"
		m.Size = 900 + f.rng.Intn(2000)
		m.ClientIP = randBot().ip

	case ClassUnresolvable:
		dom := f.unresolvable[f.rng.Intn(len(f.unresolvable))]
		m.EnvelopeFrom = mail.Address{Local: fmt.Sprintf("x%d", f.rng.Intn(10000)), Domain: dom}
		m.Rcpt = randUser()
		m.Subject = makeSubject(f.rng, "")
		m.Size = 1500 + f.rng.Intn(4000)
		m.ClientIP = randBot().ip

	case ClassRelayAttempt:
		m.EnvelopeFrom = f.innocents[f.rng.Intn(len(f.innocents))]
		if p.OpenRelay {
			// Open relays accept mail for their relayed domains,
			// addressed to arbitrary mailboxes.
			m.Rcpt = mail.Address{
				Local:  fmt.Sprintf("box%d", f.rng.Intn(5000)),
				Domain: "relay-" + p.Domain,
			}
		} else {
			m.Rcpt = mail.Address{Local: "info", Domain: f.foreignDomain}
		}
		camp := f.pickSpamCampaign(comp.Name)
		m.Subject = camp.Subject
		m.Size = camp.MsgSize
		m.ClientIP = randBot().ip

	case ClassRejectedSender:
		m.EnvelopeFrom = f.rejectedBy[comp.Name]
		m.Rcpt = randUser()
		m.Subject = "message from rejected sender"
		m.Size = 1200
		m.ClientIP = randBot().ip

	case ClassUnknownRecipient:
		m.EnvelopeFrom = f.innocents[f.rng.Intn(len(f.innocents))]
		m.Rcpt = mail.Address{
			Local:  fmt.Sprintf("harvest%d", f.rng.Intn(1000000)),
			Domain: p.Domain,
		}
		camp := f.pickSpamCampaign(comp.Name)
		m.Subject = camp.Subject
		m.Size = camp.MsgSize
		m.ClientIP = randBot().ip

	case ClassWhite:
		u := randUser()
		m.Rcpt = u
		seeds := f.seededWL[u.Key()]
		if len(seeds) == 0 {
			m.EnvelopeFrom = f.legitPool[f.rng.Intn(len(f.legitPool))]
		} else {
			m.EnvelopeFrom = seeds[f.rng.Intn(len(seeds))]
		}
		m.Subject = makeSubject(f.rng, "re")
		m.Size = 4000 + f.rng.Intn(45000)
		m.ClientIP = legitIPFor(m.EnvelopeFrom.Domain)

	case ClassBlack:
		u := randUser()
		m.Rcpt = u
		bl := f.seededBL[u.Key()]
		if len(bl) == 0 {
			m.EnvelopeFrom = f.innocents[f.rng.Intn(len(f.innocents))]
		} else {
			m.EnvelopeFrom = bl[f.rng.Intn(len(bl))]
		}
		m.Subject = makeSubject(f.rng, "")
		m.Size = 1500 + f.rng.Intn(4000)
		m.ClientIP = legitIPFor(m.EnvelopeFrom.Domain)

	case ClassLegitNew:
		m.Rcpt = randUser()
		m.EnvelopeFrom = f.legitPool[f.rng.Intn(len(f.legitPool))]
		m.Subject = makeSubject(f.rng, "hello")
		m.Size = 4000 + f.rng.Intn(30000)
		m.ClientIP = legitIPFor(m.EnvelopeFrom.Domain)

	case ClassNewsletter:
		camp := f.newsCamps[f.rng.Intn(len(f.newsCamps))]
		m.Rcpt = randUser()
		m.EnvelopeFrom = camp.Senders[f.rng.Intn(len(camp.Senders))]
		m.Subject = camp.Subject
		m.Size = camp.MsgSize
		m.ClientIP = legitIPFor(m.EnvelopeFrom.Domain)

	case ClassNullSender:
		m.EnvelopeFrom = mail.Null
		m.Rcpt = randUser()
		m.Subject = "Delivery Status Notification (Failure) for your recent message attempt"
		m.Size = 2200
		m.ClientIP = legitIPFor(f.legitPool[0].Domain)

	default: // ClassSpam
		camp := f.pickSpamCampaign(comp.Name)
		targets := f.campaignTargets(camp, comp.Name)
		m.Rcpt = targets[f.rng.Intn(len(targets))]
		m.EnvelopeFrom = camp.SpoofPool[f.rng.Intn(len(camp.SpoofPool))]
		m.Subject = camp.Subject
		m.Size = camp.MsgSize
		bot := randBot()
		m.ClientIP = bot.ip
		if f.rng.Float64() < camp.VirusProb {
			m.Body = "please see the attached file " + filters.EICAR
		}
	}
	m.HeaderFrom = m.EnvelopeFrom
	if m.Body == "" {
		m.Body = strings.Repeat("x", minInt(m.Size, 256))
	}
	return m
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// pickSpamCampaign selects an active campaign covering the company, by
// weight; it degrades to any covering campaign, then to any campaign
// (spam never stops entirely).
func (f *Fleet) pickSpamCampaign(company string) *Campaign {
	dayIdx := f.day
	var active, covering []*Campaign
	var total float64
	for _, c := range f.spamCamps {
		if !f.campaignCovers(c, company) {
			continue
		}
		covering = append(covering, c)
		if c.ActiveOn(dayIdx) {
			active = append(active, c)
			total += c.Weight
		}
	}
	if len(active) == 0 {
		if len(covering) > 0 {
			return covering[f.rng.Intn(len(covering))]
		}
		return f.spamCamps[f.rng.Intn(len(f.spamCamps))]
	}
	u := f.rng.Float64() * total
	for _, c := range active {
		if u < c.Weight {
			return c
		}
		u -= c.Weight
	}
	return active[len(active)-1]
}

// campaignCovers memoises whether a campaign's harvested list includes
// the company (probability 0.4 per pair).
func (f *Fleet) campaignCovers(c *Campaign, company string) bool {
	if v, ok := c.covers[company]; ok {
		return v
	}
	v := f.rng.Float64() < 0.3
	c.covers[company] = v
	return v
}

// dailyChores records digests, simulates digest weeding and outbound
// user mail, and expires old quarantine entries.
func (f *Fleet) dailyChores(dayIdx int) {
	today := f.Start.Add(time.Duration(dayIdx) * day)
	for _, comp := range f.Companies {
		p := f.profiles[comp.Name]
		eng := comp.Engine
		for _, u := range f.users[comp.Name] {
			pending := eng.PendingForUser(u)
			f.Digests.Record(u, today, pending)

			f.mu.Lock()
			diligent := f.rng.Float64() < p.DigestDiligence
			f.mu.Unlock()
			if diligent && len(pending) > 0 {
				f.weedDigest(comp, u, pending)
			}

			// Outbound mail: implicit whitelisting plus the §5.1
			// user-mail exposure channel. Rates are per-user skewed.
			f.mu.Lock()
			nOut := poisson(f.rng, p.OutboundPerUserDay*f.activity[u.Key()])
			f.mu.Unlock()
			for i := 0; i < nOut; i++ {
				f.sendOutbound(comp, u)
			}
		}
		eng.ExpireQuarantine()
	}
}

// weedDigest simulates the user working through their digest: authorize
// wanted mail, delete junk, leave the rest.
func (f *Fleet) weedDigest(comp *simnet.Company, u mail.Address, pending []digest.Item) {
	for _, item := range pending {
		f.mu.Lock()
		class := f.truth[item.MsgID]
		authorize := class.Wanted() && f.rng.Float64() < f.Cfg.DigestAuthorizeProb
		del := !class.Wanted() && f.rng.Float64() < f.Cfg.DigestDeleteProb
		f.mu.Unlock()
		switch {
		case authorize:
			_ = comp.Engine.AuthorizeFromDigest(u, item.MsgID)
		case del:
			_ = comp.Engine.DeleteFromDigest(u, item.MsgID)
		}
	}
}

// sendOutbound models one outbound user message: 80% to an existing
// contact, 20% to a brand-new address (which then gets auto-whitelisted).
func (f *Fleet) sendOutbound(comp *simnet.Company, u mail.Address) {
	f.mu.Lock()
	var to mail.Address
	seeds := f.seededWL[u.Key()]
	if len(seeds) > 0 && f.rng.Float64() < 0.8 {
		to = seeds[f.rng.Intn(len(seeds))]
	} else {
		to = f.legitPool[f.rng.Intn(len(f.legitPool))]
	}
	f.mu.Unlock()
	comp.Engine.UserSentMail(u, to)
	f.Net.SendUserMail(comp, to)
}

// poisson draws from a Poisson distribution via Knuth's method (fine for
// the small lambdas used here).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k
		}
	}
}
