package workload

import (
	"math/rand"
	"sync"
	"time"
)

// laneScheduler advances the per-company lanes through one-hour epochs
// on a persistent work-stealing worker pool. It replaces the old
// fixed-partition pool that spawned fresh goroutines every epoch and
// handed lanes out round-robin off one shared counter: now the workers
// live for the whole Run, each epoch deals every worker a contiguous
// chunk of lanes in its local deque, and a worker that drains its own
// deque steals from the others — so a lane stuck in a spam-campaign
// burst no longer straggles the epoch while the other workers idle.
//
// Correctness does not depend on who executes a lane: lanes are
// independent within an epoch (shared state is frozen between fired
// barriers and all cross-lane effects are staged, see ledger.go), so
// any execution order yields bit-for-bit identical results. The steal
// victim order is still seeded per worker — scheduling itself is
// reproducible, not just its outcome.
type laneScheduler struct {
	f       *Fleet
	workers int

	deques   []laneDeque
	stealRng []*rand.Rand

	start []chan time.Time // per-worker epoch release (workers 1..n-1)
	done  chan struct{}    // one token per worker per epoch
	quit  chan struct{}
}

// newLaneScheduler builds the pool. workers <= 1 selects the serial
// path: no goroutines, no deques, identical epoch algorithm.
func newLaneScheduler(f *Fleet, workers int) *laneScheduler {
	ls := &laneScheduler{f: f, workers: workers}
	if workers <= 1 {
		return ls
	}
	ls.deques = make([]laneDeque, workers)
	ls.stealRng = make([]*rand.Rand, workers)
	ls.start = make([]chan time.Time, workers)
	ls.done = make(chan struct{}, workers)
	ls.quit = make(chan struct{})
	for w := 0; w < workers; w++ {
		ls.stealRng[w] = rand.New(rand.NewSource(deriveSeed(f.Cfg.Seed, saltSteal, int64(w))))
		if w == 0 {
			continue // the coordinator doubles as worker 0
		}
		ls.start[w] = make(chan time.Time, 1)
		go ls.loop(w)
	}
	return ls
}

// loop is one pool worker: park until the coordinator releases the
// epoch, drain work, report done.
func (ls *laneScheduler) loop(w int) {
	for {
		select {
		case end := <-ls.start[w]:
			ls.work(w, end)
			ls.done <- struct{}{}
		case <-ls.quit:
			return
		}
	}
}

// stop tears the pool down (Run exit).
func (ls *laneScheduler) stop() {
	if ls.quit != nil {
		close(ls.quit)
	}
}

// advance runs every lane to epochEnd and returns once all are parked
// there (the epoch rendezvous).
func (ls *laneScheduler) advance(epochEnd time.Time) {
	if ls.workers <= 1 {
		for _, ln := range ls.f.lanes {
			ln.sched.RunUntil(epochEnd)
		}
		return
	}
	// Deal contiguous lane chunks: worker w owns [w*L/n, (w+1)*L/n).
	// The deal is deterministic; only who *finishes* a lane varies, and
	// that cannot affect results.
	lanes := len(ls.f.lanes)
	for w := 0; w < ls.workers; w++ {
		ls.deques[w].reset(w*lanes/ls.workers, (w+1)*lanes/ls.workers)
	}
	for w := 1; w < ls.workers; w++ {
		ls.start[w] <- epochEnd
	}
	ls.work(0, epochEnd)
	for w := 1; w < ls.workers; w++ {
		<-ls.done
	}
}

// work drains lane items: own deque first (LIFO), then steal. A worker
// returns when every deque is empty; in-flight lanes finish with the
// worker that claimed them.
func (ls *laneScheduler) work(w int, end time.Time) {
	var steals int64
	for {
		li, ok := ls.deques[w].pop()
		if !ok {
			li, ok = ls.steal(w)
			if ok {
				steals++
			}
		}
		if !ok {
			break
		}
		ls.f.lanes[li].sched.RunUntil(end)
	}
	if steals > 0 {
		ls.f.ledger.steals.Add(steals)
	}
}

// steal tries each victim once in this worker's seeded order, taking
// from the FIFO end of the victim's deque (the lanes the owner would
// reach last).
func (ls *laneScheduler) steal(w int) (int, bool) {
	for _, v := range ls.stealRng[w].Perm(ls.workers) {
		if v == w {
			continue
		}
		if li, ok := ls.deques[v].steal(); ok {
			return li, true
		}
	}
	return 0, false
}

// laneDeque is one worker's epoch work list: lane indices dealt at
// epoch start, popped LIFO by the owner and stolen FIFO by other
// workers. Nothing pushes mid-epoch, so a mutex is plenty — the lock is
// held for an index swap, never across lane execution.
type laneDeque struct {
	mu    sync.Mutex
	items []int32
	head  int
}

// reset fills the deque with lanes [lo, hi).
func (d *laneDeque) reset(lo, hi int) {
	d.mu.Lock()
	d.items = d.items[:0]
	d.head = 0
	for i := lo; i < hi; i++ {
		d.items = append(d.items, int32(i))
	}
	d.mu.Unlock()
}

// pop takes from the tail (owner side, LIFO).
func (d *laneDeque) pop() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head >= len(d.items) {
		return 0, false
	}
	li := d.items[len(d.items)-1]
	d.items = d.items[:len(d.items)-1]
	return int(li), true
}

// steal takes from the head (thief side, FIFO).
func (d *laneDeque) steal() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head >= len(d.items) {
		return 0, false
	}
	li := d.items[d.head]
	d.head++
	return int(li), true
}
