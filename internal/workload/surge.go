package workload

// Overload/surge machinery: when Config.Overload is set, every message
// passes the company's admission controller before Engine.Receive. Shed
// mail is never dropped by the filter — it is tempfailed (the SMTP 451
// the live gateway sends) and the sender's MTA model decides whether it
// retries: real mail servers always do, fire-and-forget botnet cannons
// mostly do not. That asymmetry is the whole point of the fail-safe
// shed policy (and the same one greylisting exploits): under a 10×
// campaign burst the controller sheds aggressively, spam evaporates,
// and every piece of ham arrives once the surge passes.

import (
	"time"

	"repro/internal/mail"
	"repro/internal/overload"
)

// SurgeBurst is one scheduled traffic burst: starting at Hour on Day
// (simulation-relative, 0-based) and lasting Hours, each company's
// hourly injection is topped up with extra botnet spam so total volume
// reaches roughly Intensity× the profile baseline.
type SurgeBurst struct {
	Day   int
	Hour  int
	Hours int // window length in hours (0 means 1)
	// Intensity is the total-volume multiplier; 10 models the paper-scale
	// campaign burst. Values <= 1 inject nothing extra.
	Intensity float64
}

// covers reports whether the burst window contains (day, hour).
func (b SurgeBurst) covers(day, hour int) bool {
	h := day*24 + hour
	start := b.Day*24 + b.Hour
	n := b.Hours
	if n <= 0 {
		n = 1
	}
	return h >= start && h < start+n
}

// burstExtra returns how many extra spam messages to inject on top of a
// base-sized hourly batch.
func (f *Fleet) burstExtra(day, hour, base int) int {
	extra := 0
	for _, b := range f.Cfg.SurgeBursts {
		if b.covers(day, hour) && b.Intensity > 1 {
			extra += int(float64(base) * (b.Intensity - 1))
		}
	}
	return extra
}

// laneSurgeStats is the lane-local shed/retry ledger. Everything here
// is written on the lane goroutine and summed in canonical lane order
// by OverloadStats, so the totals are worker-count invariant.
type laneSurgeStats struct {
	hamShedMsgs  int64 // distinct ham messages shed at least once
	hamRecovered int64 // of those, re-admitted on a later retry
	hamDropped   int64 // ham abandoned after a shed (must stay zero)
	spamDropped  int64 // bot mail that never retried its 451
	retries      int64 // redelivery attempts scheduled after sheds
}

// shedRetrySchedule is the compliant-MTA redelivery ladder after a 451:
// standard queue-runner spacing, jittered per attempt, repeating the
// last rung until delivery. It always outlasts a burst window, which is
// what makes "shed ham is delayed, never lost" structural.
var shedRetrySchedule = []time.Duration{
	15 * time.Minute, 30 * time.Minute, time.Hour,
	2 * time.Hour, 4 * time.Hour, 8 * time.Hour,
}

// admitAndDeliver routes one message through the lane's admission
// controller. attempt counts prior sheds of this same message.
func (f *Fleet) admitAndDeliver(ln *companyLane, msg *mail.Message, class Class, attempt int) {
	ctl := ln.ctl
	out := ctl.Submit(msg.ID,
		func(g *overload.Grant, _ time.Duration) {
			f.serveAdmitted(ln, msg, class, attempt, g)
		},
		func(overload.Reason) {
			f.shedTempfail(ln, msg, class, attempt)
		},
	)
	switch {
	case out.Granted != nil:
		f.serveAdmitted(ln, msg, class, attempt, out.Granted)
	case out.Queued:
		// Lazy expiry only runs on Submit/Release traffic; in virtual
		// time a lull after the burst would park expired tickets
		// forever, so pin this enqueue's deadline with an explicit
		// Expire just past it.
		ln.sched.After(ctl.QueueDeadline()+time.Millisecond, ctl.Expire)
	default:
		f.shedTempfail(ln, msg, class, attempt)
	}
}

// serveAdmitted holds the grant for the injected service latency (the
// "surge" fault target; zero without a SurgePlan), then delivers and
// releases — the release feeds the AIMD limiter the observed latency.
func (f *Fleet) serveAdmitted(ln *companyLane, msg *mail.Message, class Class, attempt int, g *overload.Grant) {
	var svc time.Duration
	if ln.surge != nil {
		if d := ln.surge.Decide("surge", 0); d.Latency > 0 {
			svc = d.Latency
		}
	}
	deliver := func() {
		msg.Received = ln.clk.Now()
		f.deliverNow(ln, msg, class, attempt)
		g.Release()
	}
	if svc <= 0 {
		deliver()
		return
	}
	ln.sched.After(svc, deliver)
}

// shedTempfail models the sender's reaction to the admission 451. Real
// MTAs (whitelisted correspondents, new humans, newsletters, bounce
// sources, even blacklisted-but-real senders) requeue and retry until
// delivered; botnet cannons retry with SpamRetryProb and otherwise
// abandon the message.
func (f *Fleet) shedTempfail(ln *companyLane, msg *mail.Message, class Class, attempt int) {
	st := &ln.surgeStats
	ham := class.Wanted()
	if ham && attempt == 0 {
		st.hamShedMsgs++
	}
	realMTA := ham || class == ClassBlack || class == ClassNullSender
	if !realMTA && ln.rng.Float64() >= f.Cfg.SpamRetryProb {
		if ham {
			st.hamDropped++ // structurally unreachable; counted so the invariant is checked, not assumed
		} else {
			st.spamDropped++
		}
		putMsg(msg)
		return
	}
	st.retries++
	idx := min(attempt, len(shedRetrySchedule)-1)
	delay := shedRetrySchedule[idx] + time.Duration(ln.rng.Int63n(int64(5*time.Minute)))
	ln.sched.After(delay, func() {
		f.admitAndDeliver(ln, msg, class, attempt+1)
	})
}

// OverloadStats aggregates the fleet's admission controllers plus the
// workload-side shed/retry ledger, in canonical lane order.
type OverloadStats struct {
	// Ctl is the merged controller metrics (sheds by reason, admission
	// counts, max queue depth, delay histogram).
	Ctl overload.Metrics
	// HamShed counts distinct wanted messages tempfailed at least once.
	HamShed int64
	// HamRecovered counts shed ham re-admitted on a later retry.
	HamRecovered int64
	// HamOutstanding is shed ham still sitting on a retry timer when the
	// run ended — delayed past the horizon, not lost.
	HamOutstanding int64
	// HamDropped is ham abandoned after a shed. The fail-safe contract
	// makes this impossible; experiments assert it is zero.
	HamDropped int64
	// SpamDropped is bot mail that never retried its 451.
	SpamDropped int64
	// Retries is the number of post-shed redelivery attempts scheduled.
	Retries int64
}

// OverloadStats returns the aggregated admission/shed accounting (zero
// value when Config.Overload is unset).
func (f *Fleet) OverloadStats() OverloadStats {
	var st OverloadStats
	first := true
	for _, ln := range f.lanes {
		if ln.ctl == nil {
			continue
		}
		m := ln.ctl.Metrics()
		if first {
			st.Ctl = m
			first = false
		} else {
			st.Ctl.Merge(m)
		}
		st.HamShed += ln.surgeStats.hamShedMsgs
		st.HamRecovered += ln.surgeStats.hamRecovered
		st.HamDropped += ln.surgeStats.hamDropped
		st.SpamDropped += ln.surgeStats.spamDropped
		st.Retries += ln.surgeStats.retries
	}
	st.HamOutstanding = st.HamShed - st.HamRecovered - st.HamDropped
	return st
}
