package workload

import (
	"testing"
	"time"
)

// TestSparseBarrierLedger pins the sparse-synchronization accounting:
// every one-hour epoch is either fired or skipped, a stock run skips a
// meaningful fraction (that is the point of the ledger), and the
// watermark lands on the last fired barrier — the end of the run.
func TestSparseBarrierLedger(t *testing.T) {
	f := NewFleet(smallConfig(3))
	days := 3
	f.Run(days)

	st := f.SyncStats()
	if want := int64(days * 24); st.Epochs != want {
		t.Fatalf("epochs = %d, want %d", st.Epochs, want)
	}
	if st.BarriersFired+st.BarriersSkipped != st.Epochs {
		t.Fatalf("fired %d + skipped %d != epochs %d",
			st.BarriersFired, st.BarriersSkipped, st.Epochs)
	}
	if st.BarriersFired == 0 {
		t.Fatal("no barrier ever fired")
	}
	if st.BarriersSkipped == 0 {
		t.Fatal("stock config skipped no barriers; sparse path untested")
	}
	// The 4-hourly checker poll alone forces 6 barriers/day, and the
	// day's final epoch always fires.
	if min := int64(days * 6); st.BarriersFired < min {
		t.Fatalf("fired = %d, want >= %d (checker-period barriers)", st.BarriersFired, min)
	}
	if got, want := f.Watermark(), f.Start.Add(time.Duration(days)*24*time.Hour); !got.Equal(want) {
		t.Fatalf("watermark = %v, want %v", got, want)
	}
	// The shared clock is parked on the watermark between Run calls.
	if !f.Clk.Now().Equal(f.Watermark()) {
		t.Fatalf("clock %v != watermark %v", f.Clk.Now(), f.Watermark())
	}
}

// TestFleetRBLCacheHitRate is the acceptance gate for the explicit-
// invalidation RBL memo: across a fleet run the overwhelming majority of
// blocklist lookups must be served from the memo. (The old TTL+
// generation cache measured ~5% here.)
func TestFleetRBLCacheHitRate(t *testing.T) {
	f := NewFleet(smallConfig(5))
	f.Run(3)

	st := f.RBLCache.Stats()
	if st.Lookups() < 1000 {
		t.Fatalf("only %d RBL lookups; run too small to judge hit rate", st.Lookups())
	}
	if rate := st.HitRate(); rate < 0.85 {
		t.Fatalf("RBL cache hit rate = %.3f, want >= 0.85 (stats %+v)", rate, st)
	}
}

// TestLaneDeque pins the deque discipline: the owner pops LIFO from the
// tail, thieves steal FIFO from the head, and the two meet exactly once
// per item.
func TestLaneDeque(t *testing.T) {
	var d laneDeque
	d.reset(0, 5) // items 0..4

	if li, ok := d.pop(); !ok || li != 4 {
		t.Fatalf("pop = %d,%v, want 4 (LIFO tail)", li, ok)
	}
	if li, ok := d.steal(); !ok || li != 0 {
		t.Fatalf("steal = %d,%v, want 0 (FIFO head)", li, ok)
	}
	if li, ok := d.steal(); !ok || li != 1 {
		t.Fatalf("steal = %d,%v, want 1", li, ok)
	}
	if li, ok := d.pop(); !ok || li != 3 {
		t.Fatalf("pop = %d,%v, want 3", li, ok)
	}
	if li, ok := d.pop(); !ok || li != 2 {
		t.Fatalf("pop = %d,%v, want 2", li, ok)
	}
	if _, ok := d.pop(); ok {
		t.Fatal("pop on empty deque succeeded")
	}
	if _, ok := d.steal(); ok {
		t.Fatal("steal on empty deque succeeded")
	}

	// reset reuses the backing array and restores both ends.
	d.reset(10, 12)
	if li, _ := d.steal(); li != 10 {
		t.Fatalf("steal after reset = %d, want 10", li)
	}
	if li, _ := d.pop(); li != 11 {
		t.Fatalf("pop after reset = %d, want 11", li)
	}
}
