package workload

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mail"
	"repro/internal/trace"
)

// TestTraceReplayReproducesMTADecisions freezes a fleet's workload to a
// trace, replays it against freshly-built engines with the same
// configuration, and verifies the MTA-layer decisions are identical —
// the property that makes traces usable for apples-to-apples filter
// comparisons.
func TestTraceReplayReproducesMTADecisions(t *testing.T) {
	mail.ResetIDCounter()
	var sb strings.Builder
	tw, err := trace.NewWriter(&sb, trace.Header{Name: "replay-test", Seed: 31})
	if err != nil {
		t.Fatal(err)
	}

	cfg := smallConfig(31)
	cfg.TraceSink = tw.Write
	f := NewFleet(cfg)
	f.Run(2)
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}

	// Original MTA decision counts per company.
	type counts struct {
		incoming int64
		dropped  int64
		unknown  int64
	}
	orig := make(map[string]counts)
	for _, c := range f.Companies {
		m := c.Engine.Metrics()
		orig[c.Name] = counts{
			incoming: m.MTAIncoming,
			dropped:  m.TotalMTADropped(),
			unknown:  m.MTADropped[core.UnknownRecipient],
		}
	}

	// Rebuild an identical fleet (same seed => same users, DNS, botnet,
	// whitelist seeds) but feed it the TRACE instead of generating.
	mail.ResetIDCounter()
	cfg2 := smallConfig(31)
	f2 := NewFleet(cfg2)
	byName := make(map[string]*core.Engine)
	for _, c := range f2.Companies {
		byName[c.Name] = c.Engine
	}

	r, err := trace.NewReader(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	rp := trace.NewReplayer(r)
	rp.Deliver = func(company string, m *mail.Message, _ string) {
		if eng := byName[company]; eng != nil {
			// Keep virtual time in step so seeded whitelist timestamps
			// and quarantine behave the same.
			if m.Received.After(f2.Clk.Now()) {
				f2.Clk.Set(m.Received)
			}
			eng.Receive(m)
		}
	}
	n, err := rp.Replay()
	if err != nil {
		t.Fatal(err)
	}
	var totalOrig int64
	for _, c := range orig {
		totalOrig += c.incoming
	}
	if n != totalOrig {
		t.Fatalf("replayed %d, original %d", n, totalOrig)
	}

	// MTA decisions are a pure function of (message, config, seeded
	// whitelists), so they must match exactly. (Dispatcher-level white
	// counts can drift: the original run's whitelists grew through
	// challenge solving, which replay does not include.)
	for name, o := range orig {
		m := byName[name].Metrics()
		if m.MTAIncoming != o.incoming {
			t.Errorf("%s incoming: %d vs %d", name, m.MTAIncoming, o.incoming)
		}
		if m.MTADropped[core.UnknownRecipient] != o.unknown {
			t.Errorf("%s unknown-rcpt: %d vs %d", name, m.MTADropped[core.UnknownRecipient], o.unknown)
		}
	}
}
