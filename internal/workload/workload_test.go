package workload

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/mail"
)

// smallConfig returns a fast fleet: 4 companies, tiny volumes.
func smallConfig(seed int64) Config {
	cfg := DefaultConfig(seed, 4)
	for i := range cfg.Profiles {
		cfg.Profiles[i].Users = 20
		cfg.Profiles[i].DailyVolume = 400
		cfg.Profiles[i].SeedWhitelist = 10
	}
	cfg.LegitDomains = 4
	cfg.LegitPerDomain = 50
	cfg.InnocentDomains = 6
	cfg.InnocentPerDomain = 20
	cfg.UnreachableDomains = 3
	cfg.UnresolvableDomains = 3
	cfg.TrapCount = 10
	cfg.NewsletterCampaigns = 4
	cfg.SpamCampaigns = 10
	cfg.BotnetSize = 60
	return cfg
}

func TestMixValidateAndResidual(t *testing.T) {
	m := DefaultMix()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if s := m.SpamToKnown(); s <= 0 || s >= 1 {
		t.Fatalf("SpamToKnown = %v", s)
	}
	bad := m
	bad.UnknownRecipient = 1.5
	if err := bad.Validate(); err == nil {
		t.Fatal("over-1 mix validated")
	}
	if bad.SpamToKnown() != 0 {
		t.Fatal("negative residual not clamped")
	}
}

func TestDefaultProfilesShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ps := DefaultProfiles(47, rng)
	if len(ps) != 47 {
		t.Fatalf("profiles = %d", len(ps))
	}
	open := 0
	seen := map[string]bool{}
	for _, p := range ps {
		if p.OpenRelay {
			open++
		}
		if seen[p.Name] {
			t.Fatalf("duplicate name %s", p.Name)
		}
		seen[p.Name] = true
		if p.Users <= 0 || p.DailyVolume <= 0 {
			t.Fatalf("degenerate profile %+v", p)
		}
		if err := p.Mix.Validate(); err != nil {
			t.Fatalf("profile mix invalid: %v", err)
		}
	}
	if open != 13 {
		t.Fatalf("open relays = %d, want 13 (matching the study)", open)
	}
}

func TestDrawClassDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := DefaultMix()
	counts := map[Class]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		counts[drawClass(rng, m)]++
	}
	frac := func(c Class) float64 { return float64(counts[c]) / n }
	if got := frac(ClassUnknownRecipient); math.Abs(got-m.UnknownRecipient) > 0.01 {
		t.Fatalf("unknown-recipient frac = %v, want ~%v", got, m.UnknownRecipient)
	}
	if got := frac(ClassWhite); math.Abs(got-m.WhiteKnown) > 0.005 {
		t.Fatalf("white frac = %v, want ~%v", got, m.WhiteKnown)
	}
	if got := frac(ClassSpam); math.Abs(got-m.SpamToKnown()) > 0.01 {
		t.Fatalf("spam frac = %v, want ~%v", got, m.SpamToKnown())
	}
}

func TestMakeSubjectClusterable(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := makeSubject(rng, "")
	m := &mail.Message{Subject: s}
	if m.SubjectWords() < 10 {
		t.Fatalf("subject %q has %d words, want >= 10", s, m.SubjectWords())
	}
}

func TestPoisson(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if poisson(rng, 0) != 0 {
		t.Fatal("poisson(0) != 0")
	}
	var sum int
	const n = 20000
	for i := 0; i < n; i++ {
		sum += poisson(rng, 2.5)
	}
	mean := float64(sum) / n
	if math.Abs(mean-2.5) > 0.1 {
		t.Fatalf("poisson mean = %v, want ~2.5", mean)
	}
}

func TestFleetBuild(t *testing.T) {
	f := NewFleet(smallConfig(7))
	if len(f.Companies) != 4 {
		t.Fatalf("companies = %d", len(f.Companies))
	}
	for _, c := range f.Companies {
		// 20 protected users plus the challenge-sender mailbox.
		if c.Engine.Users() != 21 {
			t.Fatalf("%s users = %d", c.Name, c.Engine.Users())
		}
	}
	if len(f.LegitPool()) != 4*50 {
		t.Fatalf("legit pool = %d", len(f.LegitPool()))
	}
	if f.Traps.Count() != 10 {
		t.Fatalf("traps = %d", f.Traps.Count())
	}
	if len(f.SpamCampaigns()) != 10 || len(f.NewsletterCampaigns()) != 4 {
		t.Fatal("campaign counts wrong")
	}
	// Seeded whitelists exist.
	u := f.Users("company-00")[0]
	if got := f.Companies[0].Engine.Whitelists().WhiteSize(u); got == 0 {
		t.Fatal("no seeded whitelist entries")
	}
}

func TestFleetRunProducesPaperShapedTraffic(t *testing.T) {
	mail.ResetIDCounter()
	f := NewFleet(smallConfig(7))
	f.Run(3)

	if f.Day() != 3 {
		t.Fatalf("Day = %d", f.Day())
	}

	var agg core.Metrics
	agg.MTADropped = map[core.MTAReason]int64{}
	agg.Delivered = map[core.DeliveryVia]int64{}
	var challenges, white, gray, incoming int64
	for _, c := range f.Companies {
		m := c.Engine.Metrics()
		incoming += m.MTAIncoming
		challenges += m.ChallengesSent
		white += m.SpoolWhite
		gray += m.SpoolGray
		for k, v := range m.MTADropped {
			agg.MTADropped[k] += v
		}
	}
	if incoming < 4000 {
		t.Fatalf("incoming = %d, want ~4800", incoming)
	}
	// MTA drop rate near the paper's ~75%.
	dropped := int64(0)
	for _, v := range agg.MTADropped {
		dropped += v
	}
	dropRate := float64(dropped) / float64(incoming)
	if dropRate < 0.55 || dropRate > 0.9 {
		t.Fatalf("MTA drop rate = %v, want ~0.7-0.8", dropRate)
	}
	// Unknown recipient dominates the drops.
	if agg.MTADropped[core.UnknownRecipient] < dropped/2 {
		t.Fatalf("unknown-recipient drops = %d of %d, want majority",
			agg.MTADropped[core.UnknownRecipient], dropped)
	}
	// Challenges flow.
	if challenges == 0 {
		t.Fatal("no challenges sent")
	}
	// Challenge records exist in the network with mixed statuses.
	st := f.Net.DeliveryStats()
	if st.Total == 0 {
		t.Fatal("no challenge records")
	}
	if st.ByStatus[0] > st.Total/10 { // StatusPending small
		t.Fatalf("too many pending challenges: %v", st.ByStatus)
	}
	// White deliveries happen instantly.
	if white == 0 {
		t.Fatal("no white traffic")
	}
	// The blacklist checker polled 6 times/day * 3 days.
	if got := f.Checker.Polls(); got != 18 {
		t.Fatalf("checker polls = %d, want 18", got)
	}
	// Digests were recorded for users.
	if len(f.Digests.Users()) == 0 {
		t.Fatal("no digests recorded")
	}
	// Ground truth covers all generated messages.
	counts := f.ClassCounts()
	var total int64
	for _, v := range counts {
		total += v
	}
	if total != incoming {
		t.Fatalf("class counts %d != incoming %d", total, incoming)
	}
}

func TestFleetDeterminism(t *testing.T) {
	run := func() (int64, int) {
		mail.ResetIDCounter()
		f := NewFleet(smallConfig(11))
		f.Run(2)
		var ch int64
		for _, c := range f.Companies {
			ch += c.Engine.Metrics().ChallengesSent
		}
		return ch, f.Net.DeliveryStats().Solved
	}
	c1, s1 := run()
	c2, s2 := run()
	if c1 != c2 || s1 != s2 {
		t.Fatalf("same seed diverged: (%d,%d) vs (%d,%d)", c1, s1, c2, s2)
	}
}

func TestOpenRelayGetsMoreChallengesPerAccepted(t *testing.T) {
	mail.ResetIDCounter()
	cfg := smallConfig(13)
	// company-00 is an open relay (first 13/47 scaled: 4*13/47 = 1).
	f := NewFleet(cfg)
	f.Run(3)

	var relayChallengeRate, normalChallengeRate float64
	var nRelay, nNormal int
	for _, c := range f.Companies {
		m := c.Engine.Metrics()
		reaching := m.SpoolWhite + m.SpoolBlack + m.SpoolGray
		if reaching == 0 {
			continue
		}
		rate := float64(m.ChallengesSent) / float64(reaching)
		if f.Profile(c.Name).OpenRelay {
			relayChallengeRate += rate
			nRelay++
		} else {
			normalChallengeRate += rate
			nNormal++
		}
	}
	if nRelay == 0 || nNormal == 0 {
		t.Skip("need both relay and non-relay companies")
	}
	// The paper reports open relays send more challenges (+9% of gray).
	// With identical mixes the relayed extra traffic adds challenges.
	t.Logf("open-relay R=%.3f vs closed R=%.3f",
		relayChallengeRate/float64(nRelay), normalChallengeRate/float64(nNormal))
}

func TestGrayLogCapturesChallengedContext(t *testing.T) {
	mail.ResetIDCounter()
	f := NewFleet(smallConfig(17))
	f.Run(2)
	gl := f.GrayLog()
	if len(gl) == 0 {
		t.Fatal("gray log empty")
	}
	for id, e := range gl {
		if e.MsgID != id || e.ClientIP == "" {
			t.Fatalf("bad gray entry %+v", e)
		}
		break
	}
	// Every challenge record joins against the gray log.
	for _, r := range f.Net.Records() {
		if _, ok := gl[r.Challenge.MsgID]; !ok {
			t.Fatalf("challenge %s missing from gray log", r.Challenge.MsgID)
		}
	}
}

func TestClassStringsAndWanted(t *testing.T) {
	if ClassSpam.String() != "spam" || ClassWhite.String() != "white" {
		t.Fatal("class strings wrong")
	}
	if !ClassLegitNew.Wanted() || !ClassNewsletter.Wanted() || ClassSpam.Wanted() {
		t.Fatal("Wanted() wrong")
	}
}

func BenchmarkFleetDay(b *testing.B) {
	cfg := smallConfig(23)
	for i := range cfg.Profiles {
		cfg.Profiles[i].DailyVolume = 1000
	}
	mail.ResetIDCounter()
	f := NewFleet(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Run(1)
	}
}
